//! Max-cut helpers shared by the cut-style workloads (image segmentation
//! and decision TSP).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::SpinVector;

/// Cut weight of `spins` on `graph`: sum of `|J|` over edges whose
/// endpoints differ.
pub fn cut_weight(graph: &IsingGraph, spins: &SpinVector) -> i64 {
    graph
        .edges()
        .filter(|&(i, j, _)| spins.get(i as usize) != spins.get(j as usize))
        .map(|(_, _, w)| (w as i64).abs())
        .sum()
}

/// Change in [`cut_weight`] from flipping spin `i` in isolation.
///
/// Each edge incident to `i` that is currently cut leaves the cut after
/// the flip (`-|J|`), and each uncut incident edge joins it (`+|J|`), so
/// the incremental gain equals
/// `cut_weight(flipped) - cut_weight(current)` exactly — the invariant
/// the differential property test below pins against a full recompute.
pub fn flip_gain(graph: &IsingGraph, spins: &SpinVector, i: usize) -> i64 {
    let mut gain = 0i64;
    for (j, w) in graph.neighbors(i) {
        let cut_now = spins.get(i) != spins.get(j as usize);
        let delta = i64::from(w).abs();
        gain = if cut_now {
            gain.saturating_sub(delta)
        } else {
            gain.saturating_add(delta)
        };
    }
    gain
}

/// Multi-start greedy local-search max-cut, used as an accuracy reference.
/// Bounded effort: restarts shrink as the graph grows.
pub fn best_cut_reference(graph: &IsingGraph, seed: u64) -> i64 {
    let n = graph.num_spins();
    if n == 0 {
        return 0;
    }
    let restarts = if n <= 512 {
        5
    } else if n <= 4_096 {
        3
    } else {
        1
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    let mut best = 0i64;
    for _ in 0..restarts {
        let mut spins = SpinVector::random(n, &mut rng);
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n {
                if flip_gain(graph, &spins, i) > 0 {
                    spins.flip(i);
                    improved = true;
                }
            }
        }
        best = best.max(cut_weight(graph, &spins));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::spin::Spin;

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, -5)
            .edge(1, 2, 3)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Down]);
        assert_eq!(cut_weight(&g, &s), 5);
        let all = SpinVector::filled(3, Spin::Up);
        assert_eq!(cut_weight(&g, &all), 0);
    }

    #[test]
    fn reference_finds_optimal_bipartite_cut() {
        // A 4-cycle is bipartite: best cut takes all 4 edges.
        let g = GraphBuilder::new(4)
            .edge(0, 1, -2)
            .edge(1, 2, -2)
            .edge(2, 3, -2)
            .edge(3, 0, -2)
            .build()
            .unwrap();
        assert_eq!(best_cut_reference(&g, 0), 8);
    }

    #[test]
    fn reference_is_local_optimum_on_complete_graph() {
        let g = topology::complete(10, |i, j| -(((i + j) % 5 + 1) as i32)).unwrap();
        let best = best_cut_reference(&g, 1);
        assert!(best > 0);
        // Upper bound: total |weight|.
        let total: i64 = g.edges().map(|(_, _, w)| (w as i64).abs()).sum();
        assert!(best <= total);
        // Complete graphs have cut >= half of total at a local optimum.
        assert!(best * 2 >= total, "cut {best} below half of {total}");
    }

    #[test]
    fn empty_graph_reference_is_zero() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(best_cut_reference(&g, 3), 0);
    }

    #[test]
    fn flip_gain_sign_cases() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, -5)
            .edge(1, 2, 3)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Up, Spin::Up]);
        // Nothing cut: flipping 1 cuts both incident edges.
        assert_eq!(flip_gain(&g, &s, 1), 8);
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        // Everything incident to 1 is cut: flipping it loses both.
        assert_eq!(flip_gain(&g, &s, 1), -8);
        // Isolated-by-weight vertex 0 against mixed neighborhood.
        assert_eq!(flip_gain(&g, &s, 0), -5);
    }

    use proptest::prelude::*;

    proptest! {
        // Differential property: the incremental gain the greedy loop
        // uses must equal a full cut-weight recompute for every vertex,
        // spin state, sign pattern, and topology — this is the invariant
        // that makes `best_cut_reference` trustworthy as an accuracy
        // reference.
        #[test]
        fn flip_gain_matches_full_recompute(
            n in 2usize..=8,
            weights in prop::collection::vec(-50i32..=50, 28..29),
            bits in prop::collection::vec(any::<bool>(), 8..9),
        ) {
            let mut builder = GraphBuilder::new(n);
            let mut k = 0usize;
            for i in 0..8u32 {
                for j in (i + 1)..8u32 {
                    let w = weights[k];
                    k += 1;
                    if (j as usize) < n && w != 0 {
                        builder.push_edge(i, j, w);
                    }
                }
            }
            let graph = builder.build().unwrap();
            let spins: SpinVector = bits[..n].iter().map(|&b| Spin::from_bit(b)).collect();
            let base = cut_weight(&graph, &spins);
            for i in 0..n {
                let mut flipped = spins.clone();
                flipped.flip(i);
                prop_assert_eq!(
                    flip_gain(&graph, &spins, i),
                    cut_weight(&graph, &flipped) - base,
                    "spin {} incremental gain diverges from full recompute", i
                );
            }
        }
    }
}
