//! Image segmentation, Sec. V.2b and Fig. 2.
//!
//! Pixels are spins (`+1` foreground, `-1` background) and "IC identifies
//! the edge value between 2 neighboring pixels (spins) by finding the
//! difference between them" (Fig. 2). A *pure* max-cut on `|Δp|` weights
//! degenerates under pixel noise (cutting every noisy edge pays), so we
//! use the standard contrast-threshold Ising segmentation the Fig. 2
//! picture actually depicts: `J_ij = θ − |Δp|` — similar pixels
//! (difference below the contrast threshold θ) couple ferromagnetically
//! and smooth into one segment, while boundary pixels (difference above
//! θ) couple antiferromagnetically and get cut. Minimizing `H` then
//! simultaneously maximizes the boundary cut and the region smoothness.
//!
//! Synthetic images contain a bright foreground disc on a darker gradient
//! background with additive noise, so instances have a "correct"
//! segmentation structure while remaining procedurally generated.

use crate::quantize::quantize_to_bits;
use crate::spec::{CopKind, Workload, WorkloadShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::{GraphBuilder, IsingGraph};
use sachi_ising::spin::SpinVector;

/// Pixel connectivity of the segmentation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Connectivity {
    /// 4-connected grid (Fig. 2's illustration).
    Grid4,
    /// Dense neighborhood of Chebyshev radius `r` (the paper's "densely
    /// connected" Fig. 4 row; radius 3 gives 48 neighbors).
    Dense(u8),
}

/// An image-segmentation instance.
#[derive(Debug, Clone)]
pub struct ImageSegmentation {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
    graph: IsingGraph,
    resolution_bits: u32,
    connectivity: Connectivity,
    contrast_threshold: i64,
    total_abs_weight: i64,
    seed: u64,
}

/// Default contrast threshold θ separating "same segment" from
/// "boundary" pixel differences (the synthetic images carry ±8 noise, so
/// 24 clears noise while real edges exceed 60).
pub const DEFAULT_CONTRAST_THRESHOLD: i64 = 24;

impl ImageSegmentation {
    /// Builds a `width x height` instance with the paper's defaults
    /// (dense radius-3 connectivity, 6-bit ICs).
    ///
    /// # Panics
    ///
    /// Panics if the image has fewer than 4 pixels.
    pub fn new(width: usize, height: usize, seed: u64) -> Self {
        Self::with_options(
            width,
            height,
            seed,
            Connectivity::Dense(3),
            CopKind::ImageSegmentation.typical_resolution_bits(),
        )
    }

    /// Builds an instance with explicit connectivity and resolution.
    ///
    /// # Panics
    ///
    /// Panics if the image has fewer than 4 pixels, or `bits` is outside
    /// `2..=32`, or a dense radius of 0 is requested.
    pub fn with_options(
        width: usize,
        height: usize,
        seed: u64,
        connectivity: Connectivity,
        bits: u32,
    ) -> Self {
        assert!(width * height >= 4, "image must have at least 4 pixels");
        if let Connectivity::Dense(r) = connectivity {
            assert!(r > 0, "dense radius must be positive");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = synth_image(width, height, &mut rng);

        // Collect edges with raw |Δp| weights, quantize jointly, build.
        let mut endpoints: Vec<(u32, u32)> = Vec::new();
        let mut diffs: Vec<i64> = Vec::new();
        let id = |r: usize, c: usize| (r * width + c) as u32;
        let radius = match connectivity {
            Connectivity::Grid4 => 1usize,
            Connectivity::Dense(r) => r as usize,
        };
        for r in 0..height {
            for c in 0..width {
                let u = id(r, c);
                // Enumerate each undirected pair once: neighbors that are
                // lexicographically after (r, c) within the window.
                for dr in 0..=radius {
                    let lo = if dr == 0 { 1i64 } else { -(radius as i64) };
                    for dc in lo..=(radius as i64) {
                        if dr == 0 && dc <= 0 {
                            continue;
                        }
                        if let Connectivity::Grid4 = connectivity {
                            if dr + dc.unsigned_abs() as usize != 1 {
                                continue;
                            }
                        }
                        let (nr, nc) = (r + dr, c as i64 + dc);
                        if nr >= height || nc < 0 || nc as usize >= width {
                            continue;
                        }
                        let v = id(nr, nc as usize);
                        endpoints.push((u, v));
                        let d = (pixels[u as usize] as i64 - pixels[v as usize] as i64).abs();
                        diffs.push(d);
                    }
                }
            }
        }
        // Contrast-threshold coupling: J = θ - |Δp| (ferromagnetic for
        // similar pixels, antiferromagnetic across real edges), quantized
        // jointly to R bits.
        let threshold = DEFAULT_CONTRAST_THRESHOLD;
        let signed: Vec<i64> = diffs.iter().map(|&d| threshold - d).collect();
        let quantized = quantize_to_bits(&signed, bits);
        let mut builder = GraphBuilder::new(width * height);
        let mut total_abs_weight = 0i64;
        for (&(u, v), &q) in endpoints.iter().zip(quantized.iter()) {
            builder.push_edge(u, v, q);
            total_abs_weight += (q as i64).abs();
        }
        let graph = builder
            .build()
            .expect("segmentation graph construction cannot fail");

        ImageSegmentation {
            width,
            height,
            pixels,
            graph,
            resolution_bits: bits,
            connectivity,
            contrast_threshold: threshold,
            total_abs_weight,
            seed,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The grayscale pixel values, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The connectivity used to build the graph.
    pub fn connectivity(&self) -> Connectivity {
        self.connectivity
    }

    /// The contrast threshold θ used to build the couplings.
    pub fn contrast_threshold(&self) -> i64 {
        self.contrast_threshold
    }

    /// Boundary cut weight of a segmentation: `Σ_{σ_i != σ_j, J < 0} |J|`
    /// — how much of the image's real edge weight the split exploits.
    pub fn cut_weight(&self, spins: &SpinVector) -> i64 {
        self.graph
            .edges()
            .filter(|&(i, j, w)| w < 0 && spins.get(i as usize) != spins.get(j as usize))
            .map(|(_, _, w)| (w as i64).abs())
            .sum()
    }

    /// Objective weight satisfied by a segmentation: ferromagnetic edges
    /// count when aligned, antiferromagnetic edges when cut.
    pub fn satisfied_weight(&self, spins: &SpinVector) -> i64 {
        self.graph
            .edges()
            .filter(|&(i, j, w)| {
                let aligned = spins.get(i as usize) == spins.get(j as usize);
                (w > 0 && aligned) || (w < 0 && !aligned)
            })
            .map(|(_, _, w)| (w as i64).abs())
            .sum()
    }

    /// Total absolute coupling weight (the satisfied-weight ceiling).
    pub fn total_weight(&self) -> i64 {
        self.total_abs_weight
    }

    /// Renders a segmentation as ASCII art (`#` foreground, `.`
    /// background) — the quickstart example's output.
    pub fn render(&self, spins: &SpinVector) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for r in 0..self.height {
            for c in 0..self.width {
                out.push(if spins.get(r * self.width + c).bit() {
                    '#'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

impl Workload for ImageSegmentation {
    fn kind(&self) -> CopKind {
        CopKind::ImageSegmentation
    }

    fn name(&self) -> String {
        format!(
            "image-segmentation({}x{}, {:?}, R={}, seed={})",
            self.width, self.height, self.connectivity, self.resolution_bits, self.seed
        )
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        WorkloadShape::new(
            (self.width * self.height) as u64,
            self.graph.max_degree() as u64,
            self.resolution_bits,
        )
    }

    /// Fraction of the objective weight satisfied (1.0 = every smooth
    /// region intact and every boundary cut).
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        if self.total_abs_weight == 0 {
            return 1.0;
        }
        self.satisfied_weight(spins) as f64 / self.total_abs_weight as f64
    }
}

/// Procedurally generates a test image: darker gradient background, bright
/// disc, additive noise.
fn synth_image(width: usize, height: usize, rng: &mut StdRng) -> Vec<u8> {
    let cx = width as f64 / 2.0;
    let cy = height as f64 / 2.0;
    let radius = (width.min(height) as f64) / 3.5;
    let mut pixels = Vec::with_capacity(width * height);
    for r in 0..height {
        for c in 0..width {
            let base = 40.0 + 40.0 * (c as f64 / width.max(1) as f64);
            let d = ((c as f64 - cx).powi(2) + (r as f64 - cy).powi(2)).sqrt();
            let value = if d < radius { 200.0 } else { base };
            let noise: f64 = rng.gen_range(-8.0..8.0);
            pixels.push((value + noise).clamp(0.0, 255.0) as u8);
        }
    }
    pixels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::prelude::*;

    #[test]
    fn image_has_foreground_and_background() {
        let w = ImageSegmentation::new(16, 16, 1);
        let bright = w.pixels().iter().filter(|&&p| p > 150).count();
        let dark = w.pixels().iter().filter(|&&p| p < 100).count();
        assert!(bright > 10, "no foreground: {bright}");
        assert!(dark > 10, "no background: {dark}");
        assert_eq!(w.pixels().len(), 256);
        assert_eq!(w.width(), 16);
        assert_eq!(w.height(), 16);
    }

    #[test]
    fn dense_radius3_has_48_interior_neighbors() {
        let w = ImageSegmentation::new(10, 10, 2);
        assert_eq!(w.graph().max_degree(), 48);
        assert_eq!(w.connectivity(), Connectivity::Dense(3));
    }

    #[test]
    fn grid4_matches_fig2_topology() {
        let w = ImageSegmentation::with_options(4, 3, 3, Connectivity::Grid4, 6);
        // Fig. 2's 4x3 image: 17 edges.
        assert_eq!(w.graph().num_edges(), 17);
        assert_eq!(w.graph().max_degree(), 4);
    }

    #[test]
    fn weights_are_signed_by_contrast() {
        // Smooth-region edges couple ferromagnetically (J > 0), real
        // boundaries antiferromagnetically (J < 0).
        let w = ImageSegmentation::with_options(12, 12, 4, Connectivity::Grid4, 6);
        let positive = w.graph().edges().filter(|&(_, _, j)| j > 0).count();
        let negative = w.graph().edges().filter(|&(_, _, j)| j < 0).count();
        assert!(positive > 0, "no smoothing edges");
        assert!(negative > 0, "no boundary edges");
        assert!(positive > negative, "boundaries should be the minority");
        assert_eq!(w.contrast_threshold(), DEFAULT_CONTRAST_THRESHOLD);
    }

    #[test]
    fn solver_recovers_bright_disc() {
        // Simulated annealing is stochastic; take the best of a few
        // restarts (standard practice) and require the winning
        // segmentation to separate the bright disc from the background —
        // i.e. no checkerboard degeneracy.
        let w = ImageSegmentation::with_options(14, 14, 6, Connectivity::Grid4, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let init = SpinVector::random(196, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let mut best: Option<(f64, SpinVector)> = None;
        for seed in 0..6 {
            let opts = SolveOptions {
                schedule: Schedule::new(124.0, 0.95, 0.05),
                ..SolveOptions::for_graph(w.graph(), seed)
            };
            let r = solver.solve(w.graph(), &init, &opts);
            let acc = w.accuracy(&r.spins);
            if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                best = Some((acc, r.spins));
            }
        }
        let (acc, spins) = best.expect("at least one restart ran");
        assert!(acc > 0.9, "best accuracy {acc}");
        let pixels = w.pixels();
        let (mut a_sum, mut a_n, mut b_sum, mut b_n) = (0u64, 0u64, 0u64, 0u64);
        for (i, spin) in spins.iter().enumerate() {
            if spin.bit() {
                a_sum += pixels[i] as u64;
                a_n += 1;
            } else {
                b_sum += pixels[i] as u64;
                b_n += 1;
            }
        }
        assert!(a_n > 0 && b_n > 0, "degenerate one-sided segmentation");
        let (bright_mean, dark_mean) = if a_sum * b_n > b_sum * a_n {
            (a_sum as f64 / a_n as f64, b_sum as f64 / b_n as f64)
        } else {
            (b_sum as f64 / b_n as f64, a_sum as f64 / a_n as f64)
        };
        assert!(
            bright_mean - dark_mean > 40.0,
            "sides not separated by brightness: {bright_mean} vs {dark_mean}"
        );
    }

    #[test]
    fn solver_beats_random_segmentation() {
        let w = ImageSegmentation::with_options(8, 8, 5, Connectivity::Grid4, 6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let init = SpinVector::random(64, &mut rng);
        let random_acc = w.accuracy(&init);
        let mut solver = CpuReferenceSolver::new();
        let r = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), 7));
        let acc = w.accuracy(&r.spins);
        assert!(acc > random_acc, "solver {acc} <= random {random_acc}");
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn satisfied_weight_bounds() {
        let w = ImageSegmentation::new(8, 8, 7);
        assert!(w.total_weight() > 0);
        let all_same = SpinVector::filled(64, Spin::Up);
        // A one-sided labeling satisfies every smoothing edge but cuts no
        // boundary: accuracy strictly between 0 and 1.
        assert_eq!(w.cut_weight(&all_same), 0);
        let acc = w.accuracy(&all_same);
        assert!(acc > 0.0 && acc < 1.0, "one-sided accuracy {acc}");
        assert!(w.satisfied_weight(&all_same) < w.total_weight());
    }

    #[test]
    fn render_shape() {
        let w = ImageSegmentation::with_options(4, 2, 8, Connectivity::Grid4, 4);
        let mut s = SpinVector::filled(8, Spin::Down);
        s.set(0, Spin::Up);
        let art = w.render(&s);
        assert_eq!(art, "#...\n....\n");
    }

    #[test]
    fn shape_reports_graph_degree() {
        let w = ImageSegmentation::new(10, 10, 9);
        let s = w.shape();
        assert_eq!(s.spins, 100);
        assert_eq!(s.neighbors_per_spin, 48);
        assert_eq!(s.resolution_bits, 6);
        assert!(w.name().contains("10x10"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ImageSegmentation::new(12, 12, 42);
        let b = ImageSegmentation::new(12, 12, 42);
        assert_eq!(a.pixels(), b.pixels());
        assert_eq!(a.total_weight(), b.total_weight());
    }
}
