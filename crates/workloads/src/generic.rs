//! Generic workloads over externally supplied graphs (Gset/DIMACS files,
//! hand-built instances) so loaded problems get the same accuracy
//! treatment as the built-in COPs.

use crate::maxcut::{best_cut_reference, cut_weight};
use crate::spec::{CopKind, Workload, WorkloadShape};
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::SpinVector;

/// A weighted max-cut instance over an arbitrary graph (the natural
/// reading of Gset files and of any graph whose couplings are
/// non-positive). Accuracy is the achieved cut over a multi-start greedy
/// reference computed at construction.
#[derive(Debug, Clone)]
pub struct GenericMaxCut {
    name: String,
    graph: IsingGraph,
    reference_cut: i64,
}

impl GenericMaxCut {
    /// Wraps a graph as a max-cut workload.
    ///
    /// # Panics
    ///
    /// Panics if any coupling is positive (a ferromagnetic bond has no
    /// max-cut reading; negate the weights or use a dedicated workload).
    pub fn new(name: impl Into<String>, graph: IsingGraph) -> Self {
        for (u, v, w) in graph.edges() {
            assert!(
                w <= 0,
                "max-cut expects non-positive couplings, edge ({u},{v}) has {w}"
            );
        }
        let reference_cut = best_cut_reference(&graph, 0xcafe);
        GenericMaxCut {
            name: name.into(),
            graph,
            reference_cut,
        }
    }

    /// The greedy multi-start reference cut.
    pub fn reference_cut(&self) -> i64 {
        self.reference_cut
    }

    /// Cut weight of an assignment.
    pub fn cut_weight(&self, spins: &SpinVector) -> i64 {
        cut_weight(&self.graph, spins)
    }
}

impl Workload for GenericMaxCut {
    fn kind(&self) -> CopKind {
        // Max-cut is the paper's image-segmentation family.
        CopKind::ImageSegmentation
    }

    fn name(&self) -> String {
        format!("max-cut({})", self.name)
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        WorkloadShape::new(
            self.graph.num_spins() as u64,
            self.graph.max_degree() as u64,
            self.graph.bits_required(),
        )
    }

    fn accuracy(&self, spins: &SpinVector) -> f64 {
        if self.reference_cut == 0 {
            return 1.0;
        }
        (self.cut_weight(spins) as f64 / self.reference_cut as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::io::parse_gset;
    use sachi_ising::prelude::*;

    #[test]
    fn wraps_a_gset_instance_end_to_end() {
        // An 8-cycle: bipartite, max cut = 8.
        let text = "8 8\n1 2 1\n2 3 1\n3 4 1\n4 5 1\n5 6 1\n6 7 1\n7 8 1\n8 1 1\n";
        let graph = parse_gset(text).unwrap();
        let w = GenericMaxCut::new("cycle8", graph);
        assert_eq!(w.reference_cut(), 8);
        assert_eq!(w.shape().spins, 8);
        assert!(w.name().contains("cycle8"));

        let mut rng = StdRng::seed_from_u64(1);
        let init = SpinVector::random(8, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        // Unit couplings freeze fast; a slower schedule plus restarts
        // reliably reaches the bipartition.
        let opts = SolveOptions {
            schedule: Schedule::new(4.0, 0.95, 0.05),
            ..SolveOptions::for_graph(w.graph(), 2)
        };
        let r = solve_multi_start(&mut solver, w.graph(), &init, &opts, 12);
        assert!(
            (w.accuracy(&r.spins) - 1.0).abs() < 1e-12,
            "cut {}",
            w.cut_weight(&r.spins)
        );
    }

    #[test]
    fn accuracy_is_zero_for_uncut_assignment() {
        let graph = topology::complete(6, |_, _| -2).unwrap();
        let w = GenericMaxCut::new("k6", graph);
        let all = SpinVector::filled(6, Spin::Up);
        assert_eq!(w.accuracy(&all), 0.0);
        assert!(w.reference_cut() > 0);
    }

    #[test]
    #[should_panic(expected = "non-positive couplings")]
    fn rejects_ferromagnetic_bonds() {
        let graph = GraphBuilder::new(2).edge(0, 1, 3).build().unwrap();
        let _ = GenericMaxCut::new("bad", graph);
    }
}
