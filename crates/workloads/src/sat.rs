//! 3-SAT / weighted max-SAT via clause penalties (Lucas-library
//! extension, paper Sec. VII.3).
//!
//! Each 3-literal clause `(l1 ∨ l2 ∨ l3)` contributes a penalty equal to
//! its weight exactly when the clause is unsatisfied:
//!
//! ```text
//! P_c = w_c · (1 − L1)(1 − L2)(1 − L3)
//! ```
//!
//! Expanding the product leaves a cubic monomial `±w·x·y·z`, which one
//! ancilla variable per clause quadratizes exactly (Boros–Hammer):
//!
//! ```text
//! −xyz = min_g g·(2 − x − y − z)
//! +xyz = xy + min_g g·(1 − x − y + z)
//! ```
//!
//! Both identities hold with equality at the ancilla's optimum, so the
//! QUBO minimum over `n` variable spins plus `m` ancilla spins equals the
//! minimum total weight of unsatisfied clauses — minimizing the encoded
//! Hamiltonian *is* (weighted) max-SAT. Every coefficient is a small
//! multiple of the clause weight, accumulated saturating and narrowed
//! through [`crate::encode::checked_coefficient`] in
//! [`QuboBuilder::build`], so adversarially large weights fail loudly
//! with [`EncodeError::CoefficientOverflow`] instead of clamping.

use crate::corpus::SplitMix64;
use crate::encode::EncodeError;
use crate::qubo::{QuboBuilder, QuboProblem};
use crate::spec::{CopKind, Workload, WorkloadShape};
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::{Spin, SpinVector};

/// A literal: a variable index plus its polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lit {
    /// Variable index in `0..num_vars`.
    pub var: usize,
    /// `true` for `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Whether this literal is true under `assignment`.
    pub fn satisfied_by(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

/// A weighted 3-literal clause over distinct variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clause {
    /// The three literals (distinct variables).
    pub lits: [Lit; 3],
    /// Max-SAT weight (≥ 1; plain 3-SAT uses 1 everywhere).
    pub weight: i64,
}

impl Clause {
    /// Whether any literal is true under `assignment`.
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.satisfied_by(assignment))
    }
}

/// A 3-SAT / weighted max-SAT instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatInstance {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl SatInstance {
    /// Creates an instance, validating every clause.
    ///
    /// # Panics
    ///
    /// Panics if a clause references a variable `>= num_vars`, repeats a
    /// variable, or carries a non-positive weight.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for clause in &clauses {
            let [a, b, c] = clause.lits;
            assert!(
                a.var < num_vars && b.var < num_vars && c.var < num_vars,
                "clause variable out of range"
            );
            assert!(
                a.var != b.var && a.var != c.var && b.var != c.var,
                "clause variables must be distinct"
            );
            assert!(clause.weight > 0, "clause weight must be positive");
        }
        SatInstance { num_vars, clauses }
    }

    /// A uniformly random instance: each clause picks 3 distinct
    /// variables and independent polarities from a SplitMix64 stream, so
    /// the same seed is byte-identical on every run and thread.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars < 3`.
    pub fn random(num_vars: usize, num_clauses: usize, seed: u64) -> Self {
        assert!(num_vars >= 3, "3-SAT needs at least 3 variables");
        let mut rng = SplitMix64::new(seed);
        let clauses = (0..num_clauses)
            .map(|_| Clause {
                lits: Self::draw_lits(num_vars, &mut rng),
                weight: 1,
            })
            .collect();
        SatInstance { num_vars, clauses }
    }

    /// A planted (guaranteed-satisfiable) instance: a hidden assignment
    /// is drawn first and every clause that would violate it has one
    /// literal flipped to agree. Returns the instance and its planted
    /// assignment (which satisfies every clause).
    ///
    /// # Panics
    ///
    /// Panics if `num_vars < 3`.
    pub fn planted(num_vars: usize, num_clauses: usize, seed: u64) -> (Self, Vec<bool>) {
        assert!(num_vars >= 3, "3-SAT needs at least 3 variables");
        let mut rng = SplitMix64::new(seed);
        let hidden: Vec<bool> = (0..num_vars).map(|_| rng.coin()).collect();
        let clauses = (0..num_clauses)
            .map(|_| {
                let mut lits = Self::draw_lits(num_vars, &mut rng);
                let fix = rng.below(3) as usize;
                if !lits.iter().any(|l| l.satisfied_by(&hidden)) {
                    lits[fix].positive = hidden[lits[fix].var];
                }
                Clause { lits, weight: 1 }
            })
            .collect();
        (SatInstance { num_vars, clauses }, hidden)
    }

    fn draw_lits(num_vars: usize, rng: &mut SplitMix64) -> [Lit; 3] {
        let n = num_vars as u64;
        let a = rng.below(n) as usize;
        let b = loop {
            let b = rng.below(n) as usize;
            if b != a {
                break b;
            }
        };
        let c = loop {
            let c = rng.below(n) as usize;
            if c != a && c != b {
                break c;
            }
        };
        [a, b, c].map(|var| Lit {
            var,
            positive: rng.coin(),
        })
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Sum of all clause weights.
    pub fn total_weight(&self) -> i64 {
        self.clauses
            .iter()
            .fold(0i64, |acc, c| acc.saturating_add(c.weight))
    }

    /// Total weight of clauses satisfied by `assignment`.
    pub fn satisfied_weight(&self, assignment: &[bool]) -> i64 {
        self.clauses
            .iter()
            .filter(|c| c.satisfied_by(assignment))
            .fold(0i64, |acc, c| acc.saturating_add(c.weight))
    }

    /// Total weight of clauses `assignment` leaves unsatisfied.
    pub fn unsatisfied_weight(&self, assignment: &[bool]) -> i64 {
        self.total_weight()
            .saturating_sub(self.satisfied_weight(assignment))
    }

    /// Replaces every clause weight (for weighted max-SAT studies and
    /// the overflow regression tests).
    #[must_use]
    pub fn with_uniform_weight(mut self, weight: i64) -> Self {
        assert!(weight > 0, "clause weight must be positive");
        for clause in &mut self.clauses {
            clause.weight = weight;
        }
        self
    }

    /// Serializes to DIMACS CNF (weights are not representable in plain
    /// CNF and must be uniform 1).
    pub fn to_dimacs_cnf(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for l in clause.lits {
                let v = (l.var + 1) as i64;
                out.push_str(&format!("{} ", if l.positive { v } else { -v }));
            }
            out.push_str("0\n");
        }
        out
    }
}

/// Parses DIMACS CNF text into a 3-SAT instance.
///
/// # Errors
///
/// Returns a message on malformed headers, out-of-range or duplicate
/// literals, clauses that are not exactly 3 literals wide, or clause
/// counts that disagree with the header.
pub fn parse_dimacs_cnf(text: &str) -> Result<SatInstance, String> {
    let mut num_vars: Option<usize> = None;
    let mut declared = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(format!("line {}: duplicate problem line", lineno + 1));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(format!("line {}: expected 'p cnf V C'", lineno + 1));
            }
            let v: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad variable count", lineno + 1))?;
            declared = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("line {}: bad clause count", lineno + 1))?;
            num_vars = Some(v);
            continue;
        }
        let n = num_vars.ok_or_else(|| format!("line {}: clause before header", lineno + 1))?;
        for tok in line.split_whitespace() {
            let lit: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal '{tok}'", lineno + 1))?;
            if lit == 0 {
                let lits: [Lit; 3] = current.as_slice().try_into().map_err(|_| {
                    format!(
                        "line {}: clause has {} literals, need exactly 3",
                        lineno + 1,
                        current.len()
                    )
                })?;
                if lits[0].var == lits[1].var
                    || lits[0].var == lits[2].var
                    || lits[1].var == lits[2].var
                {
                    return Err(format!("line {}: duplicate variable in clause", lineno + 1));
                }
                clauses.push(Clause { lits, weight: 1 });
                current.clear();
                continue;
            }
            let var = usize::try_from(lit.unsigned_abs())
                .ok()
                .and_then(|v| v.checked_sub(1))
                .ok_or_else(|| format!("line {}: bad literal '{tok}'", lineno + 1))?;
            if var >= n {
                return Err(format!(
                    "line {}: literal {tok} out of range (header says {n} vars)",
                    lineno + 1
                ));
            }
            current.push(Lit {
                var,
                positive: lit > 0,
            });
        }
    }
    if !current.is_empty() {
        return Err("unterminated clause (missing trailing 0)".to_string());
    }
    let n = num_vars.ok_or_else(|| "missing 'p cnf' header".to_string())?;
    if clauses.len() != declared {
        return Err(format!(
            "header declares {declared} clauses, found {}",
            clauses.len()
        ));
    }
    Ok(SatInstance::new(n, clauses))
}

/// A 3-SAT instance encoded as an Ising problem: `num_vars` variable
/// spins followed by one ancilla spin per clause.
#[derive(Debug, Clone)]
pub struct SatWorkload {
    name: String,
    instance: SatInstance,
    problem: QuboProblem,
}

impl SatWorkload {
    /// Encodes an instance.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] when clause weights
    /// push any accumulated coupling or field out of the `i32` range the
    /// Ising graph stores.
    pub fn new(name: impl Into<String>, instance: SatInstance) -> Result<Self, EncodeError> {
        let n = instance.num_vars();
        let mut q = QuboBuilder::new(n.saturating_add(instance.clauses().len()));
        for (c, clause) in instance.clauses().iter().enumerate() {
            encode_clause(&mut q, clause, n.saturating_add(c));
        }
        let problem = q.build()?;
        Ok(SatWorkload {
            name: name.into(),
            instance,
            problem,
        })
    }

    /// The underlying instance.
    pub fn instance(&self) -> &SatInstance {
        &self.instance
    }

    /// The encoded QUBO (variables then ancillas).
    pub fn problem(&self) -> &QuboProblem {
        &self.problem
    }

    /// Projects a machine state onto the original variables (ancilla
    /// spins are dropped).
    pub fn decode(&self, spins: &SpinVector) -> Vec<bool> {
        (0..self.instance.num_vars())
            .map(|i| spins.get(i).bit())
            .collect()
    }

    /// Total weight of clauses satisfied by a machine state.
    pub fn satisfied_weight(&self, spins: &SpinVector) -> i64 {
        self.instance.satisfied_weight(&self.decode(spins))
    }

    /// Lifts a variable assignment to a full spin state with every
    /// ancilla at its per-clause optimum, so
    /// `objective(complete_assignment(x))` equals the total unsatisfied
    /// weight of `x` exactly — the anchor of the differential tests.
    pub fn complete_assignment(&self, assignment: &[bool]) -> SpinVector {
        assert_eq!(
            assignment.len(),
            self.instance.num_vars(),
            "assignment must cover every variable"
        );
        let mut spins: Vec<Spin> = assignment.iter().map(|&b| Spin::from_bit(b)).collect();
        for clause in self.instance.clauses() {
            spins.push(Spin::from_bit(optimal_ancilla(clause, assignment)));
        }
        SpinVector::from_spins(&spins)
    }
}

/// Adds one clause's penalty `w·(1−L1)(1−L2)(1−L3)` to the builder,
/// quadratizing the cubic monomial through ancilla variable `g`.
fn encode_clause(q: &mut QuboBuilder, clause: &Clause, g: usize) {
    let w = clause.weight;
    // Each factor (1 − Li) is affine in its variable: (1, −1) for a
    // positive literal (1 − x), (0, 1) for a negative one (x).
    let fac: [(i64, i64); 3] = clause
        .lits
        .map(|l| if l.positive { (1, -1) } else { (0, 1) });
    let v: [usize; 3] = clause.lits.map(|l| l.var);
    let [(a0, b0), (a1, b1), (a2, b2)] = fac;
    // Constant and linear/quadratic expansion terms. Every coefficient is
    // w times a product of {0, ±1} factors, so saturating multiplication
    // is exact until w itself saturates — and a saturated w is exactly
    // what `QuboBuilder::build` rejects.
    q.constant(w.saturating_mul(a0).saturating_mul(a1).saturating_mul(a2));
    q.linear(
        v[0],
        w.saturating_mul(b0).saturating_mul(a1).saturating_mul(a2),
    );
    q.linear(
        v[1],
        w.saturating_mul(a0).saturating_mul(b1).saturating_mul(a2),
    );
    q.linear(
        v[2],
        w.saturating_mul(a0).saturating_mul(a1).saturating_mul(b2),
    );
    q.quadratic(
        v[0],
        v[1],
        w.saturating_mul(b0).saturating_mul(b1).saturating_mul(a2),
    );
    q.quadratic(
        v[0],
        v[2],
        w.saturating_mul(b0).saturating_mul(a1).saturating_mul(b2),
    );
    q.quadratic(
        v[1],
        v[2],
        w.saturating_mul(a0).saturating_mul(b1).saturating_mul(b2),
    );
    // Cubic monomial t·xyz with t = w·b0·b1·b2 = ±w.
    let t = w.saturating_mul(b0).saturating_mul(b1).saturating_mul(b2);
    if t < 0 {
        // −|t|·xyz = min_g |t|·g·(2 − x − y − z).
        q.linear(g, t.saturating_neg().saturating_mul(2));
        q.quadratic(g, v[0], t);
        q.quadratic(g, v[1], t);
        q.quadratic(g, v[2], t);
    } else {
        // +t·xyz = t·xy + min_g t·g·(1 − x − y + z).
        q.quadratic(v[0], v[1], t);
        q.linear(g, t);
        q.quadratic(g, v[0], t.saturating_neg());
        q.quadratic(g, v[1], t.saturating_neg());
        q.quadratic(g, v[2], t);
    }
}

/// The ancilla value minimizing one clause's quadratized penalty under a
/// fixed variable assignment: 1 exactly when its linear coefficient goes
/// negative.
fn optimal_ancilla(clause: &Clause, assignment: &[bool]) -> bool {
    let x: [i64; 3] = clause.lits.map(|l| i64::from(assignment[l.var]));
    let b: [i64; 3] = clause.lits.map(|l| if l.positive { -1 } else { 1 });
    let t = b[0] * b[1] * b[2];
    if t < 0 {
        // Coefficient of g is |w|·(2 − Σx): negative iff all three set.
        x[0] + x[1] + x[2] > 2
    } else {
        // Coefficient of g is w·(1 − x0 − x1 + x2).
        1 - x[0] - x[1] + x[2] < 0
    }
}

impl Workload for SatWorkload {
    fn kind(&self) -> CopKind {
        CopKind::SatThree
    }

    fn name(&self) -> String {
        format!(
            "3sat({}, n={}, m={})",
            self.name,
            self.instance.num_vars(),
            self.instance.clauses().len()
        )
    }

    fn graph(&self) -> &IsingGraph {
        self.problem.graph()
    }

    fn shape(&self) -> WorkloadShape {
        let graph = self.problem.graph();
        WorkloadShape::new(
            graph.num_spins() as u64,
            (graph.max_degree() as u64).max(1),
            graph.bits_required().max(2),
        )
    }

    fn accuracy(&self, spins: &SpinVector) -> f64 {
        let total = self.instance.total_weight();
        if total == 0 {
            return 1.0;
        }
        (self.satisfied_weight(spins) as f64 / total as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::prelude::*;

    fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << n)).map(move |mask| (0..n).map(|b| (mask >> b) & 1 == 1).collect())
    }

    #[test]
    fn penalty_counts_unsatisfied_weight_exactly() {
        // Mixed polarities exercise both cubic-sign gadgets.
        let inst = SatInstance::new(
            5,
            vec![
                Clause {
                    lits: [
                        Lit {
                            var: 0,
                            positive: true,
                        },
                        Lit {
                            var: 1,
                            positive: true,
                        },
                        Lit {
                            var: 2,
                            positive: true,
                        },
                    ],
                    weight: 1,
                },
                Clause {
                    lits: [
                        Lit {
                            var: 0,
                            positive: false,
                        },
                        Lit {
                            var: 3,
                            positive: true,
                        },
                        Lit {
                            var: 4,
                            positive: false,
                        },
                    ],
                    weight: 3,
                },
                Clause {
                    lits: [
                        Lit {
                            var: 1,
                            positive: false,
                        },
                        Lit {
                            var: 2,
                            positive: false,
                        },
                        Lit {
                            var: 4,
                            positive: false,
                        },
                    ],
                    weight: 2,
                },
            ],
        );
        let w = SatWorkload::new("unit", inst).unwrap();
        for x in all_assignments(5) {
            let completed = w.complete_assignment(&x);
            assert_eq!(
                w.problem().objective(&completed),
                w.instance().unsatisfied_weight(&x),
                "objective != unsat weight at {x:?}"
            );
        }
    }

    #[test]
    fn ancilla_completion_is_optimal() {
        // The claimed per-clause optimum must beat the flipped ancilla on
        // every assignment (otherwise the min identity is broken).
        let (inst, _) = SatInstance::planted(4, 9, 11);
        let w = SatWorkload::new("anc", inst).unwrap();
        let n = w.instance().num_vars();
        let m = w.instance().clauses().len();
        for x in all_assignments(n) {
            let best = w.problem().objective(&w.complete_assignment(&x));
            for flip in 0..m {
                let mut spins: Vec<Spin> = w.complete_assignment(&x).to_vec();
                spins[n + flip] = spins[n + flip].flipped();
                let other = w.problem().objective(&SpinVector::from_spins(&spins));
                assert!(best <= other, "ancilla {flip} not optimal at {x:?}");
            }
        }
    }

    #[test]
    fn planted_instances_are_satisfiable() {
        let (inst, hidden) = SatInstance::planted(12, 52, 7);
        assert_eq!(inst.unsatisfied_weight(&hidden), 0);
        let w = SatWorkload::new("planted", inst).unwrap();
        assert_eq!(w.problem().objective(&w.complete_assignment(&hidden)), 0);
    }

    #[test]
    fn solver_reaches_the_planted_optimum() {
        let (inst, _) = SatInstance::planted(10, 42, 3);
        let w = SatWorkload::new("solve", inst).unwrap();
        let graph = w.graph();
        let mut best = 0i64;
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let mut solver = CpuReferenceSolver::new();
            let r = solver.solve(graph, &init, &SolveOptions::for_graph(graph, seed + 20));
            best = best.max(w.satisfied_weight(&r.spins));
        }
        assert_eq!(
            best,
            w.instance().total_weight(),
            "planted optimum reachable"
        );
    }

    #[test]
    fn generator_is_deterministic_and_regime_sized() {
        let a = SatInstance::random(20, 86, 5);
        let b = SatInstance::random(20, 86, 5);
        assert_eq!(a, b);
        assert_ne!(a, SatInstance::random(20, 86, 6));
        assert_eq!(a.num_vars(), 20);
        assert_eq!(a.clauses().len(), 86);
        for c in a.clauses() {
            let [x, y, z] = c.lits;
            assert!(x.var != y.var && x.var != z.var && y.var != z.var);
        }
    }

    #[test]
    fn cnf_round_trips() {
        let (inst, _) = SatInstance::planted(8, 20, 9);
        let text = inst.to_dimacs_cnf();
        let parsed = parse_dimacs_cnf(&text).unwrap();
        assert_eq!(parsed, inst);
    }

    #[test]
    fn cnf_parser_rejects_malformed_input() {
        assert!(parse_dimacs_cnf("1 2 3 0\n")
            .unwrap_err()
            .contains("header"));
        assert!(parse_dimacs_cnf("p cnf 3 1\n1 2 0\n")
            .unwrap_err()
            .contains("exactly 3"));
        assert!(parse_dimacs_cnf("p cnf 3 1\n1 2 9 0\n")
            .unwrap_err()
            .contains("out of range"));
        assert!(parse_dimacs_cnf("p cnf 3 1\n1 1 2 0\n")
            .unwrap_err()
            .contains("duplicate variable"));
        assert!(parse_dimacs_cnf("p cnf 3 2\n1 2 3 0\n")
            .unwrap_err()
            .contains("declares 2"));
        assert!(parse_dimacs_cnf("p cnf 3 1\n1 2 3\n")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn oversized_weights_overflow_loudly() {
        let inst = SatInstance::random(6, 10, 1).with_uniform_weight(i64::MAX / 2);
        let err = SatWorkload::new("overflow", inst).expect_err("must not clamp");
        assert!(matches!(err, EncodeError::CoefficientOverflow { .. }));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_clause_variables_rejected() {
        let l = Lit {
            var: 0,
            positive: true,
        };
        let _ = SatInstance::new(
            3,
            vec![Clause {
                lits: [
                    l,
                    l,
                    Lit {
                        var: 1,
                        positive: false,
                    },
                ],
                weight: 1,
            }],
        );
    }
}
