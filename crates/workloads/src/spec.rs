//! Workload taxonomy: the four COPs of Sec. V.2 and their architectural
//! shapes (Fig. 4).
//!
//! The SACHI evaluation characterizes each COP by three numbers — spin
//! count, neighbors per spin `N`, and IC resolution `R` — because every
//! cycle/energy formula in Figs. 15, 17, 18 is a function of exactly those.
//! [`WorkloadShape`] carries them; [`CopKind::standard_shape`] reproduces
//! the Fig. 4 row for each COP.

use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::SpinVector;
use std::fmt;

/// The combinatorial optimization problems the workspace can build: the
/// four COPs of the paper's evaluation (Sec. V.2) plus the Lucas-library
/// extension families (Sec. VII.3 "extending the library to support
/// Ising formulation of COPs") added by the workload-diversity corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CopKind {
    /// Number partitioning of $80M across `m` assets (Sec. V.2a).
    AssetAllocation,
    /// Max-cut foreground/background split of an image (Sec. V.2b).
    ImageSegmentation,
    /// Decision-version traveling salesman (Sec. V.2c).
    TravelingSalesman,
    /// King's-graph ferromagnetic ground state (Sec. V.2d).
    MolecularDynamics,
    /// 3-SAT/max-SAT via clause penalties with one ancilla per clause
    /// (Lucas-library extension, [`crate::sat`]).
    SatThree,
    /// Graph k-coloring via one-hot color blocks (Lucas-library
    /// extension, [`crate::coloring`]).
    GraphColoring,
    /// Makespan-style job scheduling on identical machines, Lucas Sec.
    /// 6.3 "job sequencing with integer lengths"
    /// ([`crate::scheduling`]).
    JobScheduling,
}

impl CopKind {
    /// The four paper COPs in the paper's presentation order (the Fig. 4
    /// table rows; extension families live in [`CopKind::EXTENDED`]).
    pub const ALL: [CopKind; 4] = [
        CopKind::AssetAllocation,
        CopKind::ImageSegmentation,
        CopKind::TravelingSalesman,
        CopKind::MolecularDynamics,
    ];

    /// Every buildable family: the paper four plus the Lucas-library
    /// extensions (SAT, coloring, scheduling).
    pub const EXTENDED: [CopKind; 7] = [
        CopKind::AssetAllocation,
        CopKind::ImageSegmentation,
        CopKind::TravelingSalesman,
        CopKind::MolecularDynamics,
        CopKind::SatThree,
        CopKind::GraphColoring,
        CopKind::JobScheduling,
    ];

    /// Human-readable name used in harness tables.
    pub fn label(self) -> &'static str {
        match self {
            CopKind::AssetAllocation => "asset allocation",
            CopKind::ImageSegmentation => "image segmentation",
            CopKind::TravelingSalesman => "traveling salesman",
            CopKind::MolecularDynamics => "molecular dynamics",
            CopKind::SatThree => "3-sat",
            CopKind::GraphColoring => "graph coloring",
            CopKind::JobScheduling => "job scheduling",
        }
    }

    /// Fig. 4's "graph connectivity" column (qualitative description for
    /// the extension families).
    pub fn connectivity(self) -> &'static str {
        match self {
            CopKind::AssetAllocation => "sparingly connected",
            CopKind::ImageSegmentation => "densely connected",
            CopKind::TravelingSalesman => "fully connected",
            CopKind::MolecularDynamics => "King's (8-neighbor)",
            CopKind::SatThree => "clause-local (vars + ancillas)",
            CopKind::GraphColoring => "one-hot blocks + edge bundles",
            CopKind::JobScheduling => "one-hot blocks, dense per machine",
        }
    }

    /// Fig. 4's "typical problem size" column, as an inclusive range of
    /// spins (corpus-calibrated ranges for the extension families).
    pub fn typical_size_range(self) -> (u64, u64) {
        match self {
            CopKind::AssetAllocation => (100, 1_000),
            CopKind::ImageSegmentation => (1_000, 1_000_000),
            CopKind::TravelingSalesman => (10, 30_000),
            CopKind::MolecularDynamics => (100_000, 1_000_000),
            CopKind::SatThree => (50, 100_000),
            CopKind::GraphColoring => (100, 500_000),
            CopKind::JobScheduling => (50, 50_000),
        }
    }

    /// Fig. 4's minimum IC resolution for 90% accuracy at 1K spins. The
    /// extension families use the smallest resolution that holds their
    /// typical penalty coefficients: SAT and coloring couplings stay
    /// tiny multiples of the clause/one-hot weight (4-bit), scheduling
    /// carries `p_i·p_j` duration products (8-bit).
    pub fn typical_resolution_bits(self) -> u32 {
        match self {
            CopKind::AssetAllocation => 7,
            CopKind::ImageSegmentation => 6,
            CopKind::TravelingSalesman => 5,
            CopKind::MolecularDynamics => 4,
            CopKind::SatThree => 4,
            CopKind::GraphColoring => 4,
            CopKind::JobScheduling => 8,
        }
    }

    /// Neighbors per spin (`N`) for a COP of `spins` variables, as the
    /// paper assumes it:
    ///
    /// * asset allocation — 1 (each asset's tuple holds its single value
    ///   IC; reuse 4 = 1 x 4-bit in Fig. 15a);
    /// * image segmentation — 48 (dense radius-3 pixel neighborhood; the
    ///   paper's reuse 200 = ~50 x 4-bit);
    /// * traveling salesman — `spins - 1` (complete graph; reuse ~4000 at
    ///   1K cities x 4-bit);
    /// * molecular dynamics — 8 (King's graph; reuse 32 = 8 x 4-bit);
    /// * 3-SAT — 13 (at the critical clause/variable ratio ~4.3 each
    ///   variable shares clauses with ~9 other variables plus ~4
    ///   ancillas);
    /// * graph coloring — 32 (one-hot block of k-1 siblings plus k-color
    ///   bundles to ~8 graph neighbors at k = 4);
    /// * job scheduling — `spins/4 + 2` (one-hot over ~4 machines plus
    ///   every co-scheduled job on the shared machine layer).
    pub fn neighbors_per_spin(self, spins: u64) -> u64 {
        match self {
            CopKind::AssetAllocation => 1,
            CopKind::ImageSegmentation => 48.min(spins.saturating_sub(1)),
            CopKind::TravelingSalesman => spins.saturating_sub(1),
            CopKind::MolecularDynamics => 8.min(spins.saturating_sub(1)),
            CopKind::SatThree => 13.min(spins.saturating_sub(1)),
            CopKind::GraphColoring => 32.min(spins.saturating_sub(1)),
            CopKind::JobScheduling => (spins / 4).saturating_add(2).min(spins.saturating_sub(1)),
        }
    }

    /// The Fig. 4 shape of this COP at `spins` variables.
    pub fn standard_shape(self, spins: u64) -> WorkloadShape {
        WorkloadShape {
            spins,
            neighbors_per_spin: self.neighbors_per_spin(spins),
            resolution_bits: self.typical_resolution_bits(),
        }
    }
}

impl fmt::Display for CopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The architectural footprint of a COP: everything the CPI/energy models
/// need to know about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadShape {
    /// Number of spins (variables).
    pub spins: u64,
    /// Neighbors per spin, the paper's `N`.
    pub neighbors_per_spin: u64,
    /// IC resolution in bits, the paper's `R`.
    pub resolution_bits: u32,
}

impl WorkloadShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_bits` is outside `2..=32` (the mixed encoding
    /// supports "any precision up to 32-bit").
    pub fn new(spins: u64, neighbors_per_spin: u64, resolution_bits: u32) -> Self {
        assert!(
            (2..=32).contains(&resolution_bits),
            "resolution must be 2..=32 bits, got {resolution_bits}"
        );
        WorkloadShape {
            spins,
            neighbors_per_spin,
            resolution_bits,
        }
    }

    /// Returns the same shape at a different IC resolution (Fig. 18
    /// sweeps).
    #[must_use]
    pub fn with_resolution(mut self, bits: u32) -> Self {
        assert!(
            (2..=32).contains(&bits),
            "resolution must be 2..=32 bits, got {bits}"
        );
        self.resolution_bits = bits;
        self
    }

    /// Bits of one storage-array tuple: `N` neighbor spin bits, `N` ICs of
    /// `R` bits, plus an `R`-bit external field (Fig. 7a).
    pub fn tuple_bits(&self) -> u64 {
        self.neighbors_per_spin * (self.resolution_bits as u64 + 1) + self.resolution_bits as u64
    }

    /// Bits of the compute-array image of one tuple (the ICs only; spins
    /// ride on the word-lines or in dedicated columns depending on the
    /// stationarity).
    pub fn compute_row_bits(&self) -> u64 {
        self.neighbors_per_spin * self.resolution_bits as u64
    }

    /// Total problem footprint in bits (all tuples).
    pub fn total_bits(&self) -> u64 {
        self.spins * self.tuple_bits()
    }
}

/// A concrete COP instance: a graph to solve plus domain-level accuracy.
pub trait Workload {
    /// Which COP family this is.
    fn kind(&self) -> CopKind;

    /// Instance name for reports (includes size/seed).
    fn name(&self) -> String;

    /// The Ising graph the machines iterate on.
    fn graph(&self) -> &IsingGraph;

    /// The architectural shape (Fig. 4 view) of this instance.
    fn shape(&self) -> WorkloadShape;

    /// Domain-level solution quality in `[0, 1]` (1 = optimal/reference).
    fn accuracy(&self, spins: &SpinVector) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rows_reproduced() {
        assert_eq!(CopKind::AssetAllocation.typical_resolution_bits(), 7);
        assert_eq!(CopKind::ImageSegmentation.typical_resolution_bits(), 6);
        assert_eq!(CopKind::TravelingSalesman.typical_resolution_bits(), 5);
        assert_eq!(CopKind::MolecularDynamics.typical_resolution_bits(), 4);
        assert_eq!(
            CopKind::MolecularDynamics.connectivity(),
            "King's (8-neighbor)"
        );
        assert_eq!(CopKind::ALL.len(), 4);
    }

    #[test]
    fn neighbors_per_spin_matches_reuse_table() {
        // Fig. 15a reuse at 4-bit: asset 4, MD 32, imgseg ~200, TSP ~4000.
        assert_eq!(CopKind::AssetAllocation.neighbors_per_spin(1_000) * 4, 4);
        assert_eq!(CopKind::MolecularDynamics.neighbors_per_spin(1_000) * 4, 32);
        assert_eq!(
            CopKind::ImageSegmentation.neighbors_per_spin(1_000) * 4,
            192
        );
        assert_eq!(
            CopKind::TravelingSalesman.neighbors_per_spin(1_000) * 4,
            3_996
        );
    }

    #[test]
    fn extended_families_registered() {
        assert_eq!(CopKind::EXTENDED.len(), 7);
        assert_eq!(&CopKind::EXTENDED[..4], &CopKind::ALL[..]);
        for kind in [
            CopKind::SatThree,
            CopKind::GraphColoring,
            CopKind::JobScheduling,
        ] {
            assert!(!CopKind::ALL.contains(&kind), "{kind} is not a paper COP");
            assert!(!kind.label().is_empty());
            assert!(!kind.connectivity().is_empty());
            let (lo, hi) = kind.typical_size_range();
            assert!(lo < hi);
            let r = kind.typical_resolution_bits();
            assert!((2..=32).contains(&r));
            // The shape machinery accepts the new families end to end.
            let shape = kind.standard_shape(1_000);
            assert!(shape.neighbors_per_spin < 1_000);
            assert!(shape.tuple_bits() > 0);
        }
        assert_eq!(CopKind::SatThree.neighbors_per_spin(1_000), 13);
        assert_eq!(CopKind::GraphColoring.neighbors_per_spin(1_000), 32);
        assert_eq!(CopKind::JobScheduling.neighbors_per_spin(1_000), 252);
        // Tiny instances still clamp to spins - 1.
        assert_eq!(CopKind::SatThree.neighbors_per_spin(4), 3);
        assert_eq!(CopKind::GraphColoring.neighbors_per_spin(4), 3);
        assert_eq!(CopKind::JobScheduling.neighbors_per_spin(4), 3);
    }

    #[test]
    fn neighbors_clamped_for_tiny_instances() {
        assert_eq!(CopKind::MolecularDynamics.neighbors_per_spin(4), 3);
        assert_eq!(CopKind::ImageSegmentation.neighbors_per_spin(10), 9);
        assert_eq!(CopKind::TravelingSalesman.neighbors_per_spin(1), 0);
    }

    #[test]
    fn tuple_bits_formula() {
        // MD at 1K spins, R=4: tuple = 8*(4+1) + 4 = 44 bits.
        let s = CopKind::MolecularDynamics.standard_shape(1_000);
        assert_eq!(s.tuple_bits(), 44);
        assert_eq!(s.compute_row_bits(), 32);
        assert_eq!(s.total_bits(), 44_000);
    }

    #[test]
    fn fig4_l1_fit_analysis() {
        // Fig. 4's qualitative claim: at native R the 1K-spin COPs fit in
        // an L1-sized compute array except TSP; raising everything to 8-bit
        // pushes denser COPs out. Under our N model (see
        // `neighbors_per_spin`) the sparse COPs always fit — deviations
        // from the paper's table are catalogued by the fig04 harness.
        let l1_bits = 64 * 1024 * 8u64;
        let fits = |kind: CopKind, bits: u32| {
            kind.standard_shape(1_000)
                .with_resolution(bits)
                .total_bits()
                <= l1_bits
        };
        assert!(fits(CopKind::AssetAllocation, 7));
        assert!(fits(CopKind::ImageSegmentation, 6));
        assert!(fits(CopKind::MolecularDynamics, 4));
        assert!(!fits(CopKind::TravelingSalesman, 5));
        assert!(fits(CopKind::MolecularDynamics, 8));
        assert!(!fits(CopKind::TravelingSalesman, 8));
        // 8-bit always costs at least as much as the native resolution.
        for kind in CopKind::ALL {
            let native = kind.standard_shape(1_000).total_bits();
            let eight = kind.standard_shape(1_000).with_resolution(8).total_bits();
            assert!(eight >= native, "{kind}: 8-bit smaller than native");
        }
    }

    #[test]
    #[should_panic(expected = "resolution must be")]
    fn shape_rejects_bad_resolution() {
        let _ = WorkloadShape::new(10, 2, 1);
    }

    #[test]
    fn with_resolution_changes_only_r() {
        let s = WorkloadShape::new(100, 8, 4).with_resolution(8);
        assert_eq!(s.resolution_bits, 8);
        assert_eq!(s.spins, 100);
        assert_eq!(s.neighbors_per_spin, 8);
    }

    #[test]
    fn display_and_size_ranges() {
        assert_eq!(
            format!("{}", CopKind::TravelingSalesman),
            "traveling salesman"
        );
        let (lo, hi) = CopKind::AssetAllocation.typical_size_range();
        assert!(lo < hi);
    }
}
