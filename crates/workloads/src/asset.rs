//! Asset allocation (number partitioning), Sec. V.2a.
//!
//! "Given m assets with $80M value, divide the assets (J_ij represents
//! value) equally between 2 people." The spin of asset `i` assigns it to
//! person A (`+1`) or person B (`-1`); the objective is a zero imbalance
//! `Σ J_i σ_i = 0`.
//!
//! Functionally we solve the Lucas number-partitioning Hamiltonian
//! `H = (Σ a_i σ_i)^2`, whose pairwise expansion is an Ising graph with
//! `J_ij = -2 a_i a_j` (constant terms dropped). Architecturally the paper
//! treats each asset's tuple as holding a *single* IC — its value — which
//! is why Fig. 15a reports reuse 4 (= 1 neighbor x 4-bit) for this COP;
//! [`AssetAllocation::shape`] preserves that view. DESIGN.md records this
//! two-level modelling decision.

use crate::quantize::quantize_to_bits;
use crate::spec::{CopKind, Workload, WorkloadShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::{GraphBuilder, IsingGraph};
use sachi_ising::spin::SpinVector;

/// Total portfolio value, in dollars (the paper's $80M).
pub const TOTAL_VALUE_DOLLARS: i64 = 80_000_000;

/// An asset-allocation instance.
#[derive(Debug, Clone)]
pub struct AssetAllocation {
    values: Vec<i64>,
    quantized: Vec<i32>,
    graph: IsingGraph,
    resolution_bits: u32,
    seed: u64,
}

impl AssetAllocation {
    /// Generates `m` assets summing to [`TOTAL_VALUE_DOLLARS`] with the
    /// Fig. 4 default resolution (7-bit).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn new(m: usize, seed: u64) -> Self {
        Self::with_resolution(m, seed, CopKind::AssetAllocation.typical_resolution_bits())
    }

    /// Generates an instance with explicit IC resolution (Fig. 19c/d
    /// sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `bits` is outside `2..=32`.
    pub fn with_resolution(m: usize, seed: u64, bits: u32) -> Self {
        assert!(m >= 2, "need at least two assets to partition");
        // The Lucas expansion multiplies pairs of quantized values; beyond
        // 16-bit values the products overflow the signed 32-bit IC range
        // and saturate, corrupting the landscape. Cap the *value*
        // quantization at 16 bits — the resulting ICs then span the full
        // signed-32 range the mixed encoding supports.
        let value_bits = bits.min(16);
        let mut rng = StdRng::seed_from_u64(seed);
        // Random positive dollar values, rescaled to sum to $80M.
        let raw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.2..1.8)).collect();
        let raw_sum: f64 = raw.iter().sum();
        let mut values: Vec<i64> = raw
            .iter()
            .map(|r| ((r / raw_sum) * TOTAL_VALUE_DOLLARS as f64).round() as i64)
            .map(|v| v.max(1))
            .collect();
        // Fix rounding drift on the last asset so the total is exact.
        let drift: i64 = TOTAL_VALUE_DOLLARS - values.iter().sum::<i64>();
        let last = values.last_mut().expect("m >= 2");
        *last = (*last + drift).max(1);

        let quantized = quantize_to_bits(&values, value_bits);
        // Lucas expansion of (sum a_i sigma_i)^2 over the quantized values:
        // minimizing it in our H = -sum J sigma sigma convention needs
        // J_ij = -a_i a_j (the factor 2 is an immaterial overall scale).
        let mut builder = GraphBuilder::new(m);
        for i in 0..m as u32 {
            for j in (i + 1)..m as u32 {
                let j_ij = -(quantized[i as usize] as i64 * quantized[j as usize] as i64);
                // Signed 16-bit quantization bounds |q| <= 2^15 - 1, so
                // |j_ij| <= (2^15 - 1)^2 < 2^30 always fits i32. A failed
                // conversion is a broken invariant, not data to clamp.
                let j_ij = i32::try_from(j_ij)
                    .expect("16-bit-capped quantization keeps pair products within i32");
                builder.push_edge(i, j, j_ij);
            }
        }
        let graph = builder
            .build()
            .expect("asset graph construction cannot fail");
        AssetAllocation {
            values,
            quantized,
            graph,
            resolution_bits: bits,
            seed,
        }
    }

    /// The true (unquantized) asset values in dollars.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The R-bit quantized values the hardware computes on.
    pub fn quantized_values(&self) -> &[i32] {
        &self.quantized
    }

    /// Signed imbalance `Σ a_i σ_i` of an assignment, in dollars.
    ///
    /// # Panics
    ///
    /// Panics if `spins.len()` differs from the asset count.
    pub fn imbalance(&self, spins: &SpinVector) -> i64 {
        assert_eq!(
            spins.len(),
            self.values.len(),
            "spin count must equal asset count"
        );
        self.values
            .iter()
            .zip(spins.iter())
            .map(|(&v, s)| v * s.value())
            .sum()
    }
}

impl Workload for AssetAllocation {
    fn kind(&self) -> CopKind {
        CopKind::AssetAllocation
    }

    fn name(&self) -> String {
        format!(
            "asset-allocation(m={}, R={}, seed={})",
            self.values.len(),
            self.resolution_bits,
            self.seed
        )
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        WorkloadShape::new(self.values.len() as u64, 1, self.resolution_bits)
    }

    /// `1 - |imbalance| / total`: 1.0 is a perfect split.
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        1.0 - self.imbalance(spins).unsigned_abs() as f64 / TOTAL_VALUE_DOLLARS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::prelude::*;

    #[test]
    fn values_sum_to_80m() {
        let w = AssetAllocation::new(100, 1);
        assert_eq!(w.values().iter().sum::<i64>(), TOTAL_VALUE_DOLLARS);
        assert!(w.values().iter().all(|&v| v > 0));
        assert_eq!(w.values().len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AssetAllocation::new(50, 9);
        let b = AssetAllocation::new(50, 9);
        assert_eq!(a.values(), b.values());
        let c = AssetAllocation::new(50, 10);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn imbalance_and_accuracy() {
        let w = AssetAllocation::new(10, 2);
        let all_a = SpinVector::filled(10, Spin::Up);
        assert_eq!(w.imbalance(&all_a), TOTAL_VALUE_DOLLARS);
        assert!(w.accuracy(&all_a).abs() < 1e-9);
        // A perfect split has accuracy 1; verify monotonicity instead of
        // existence: moving one asset across reduces |imbalance|.
        let mut half = SpinVector::filled(10, Spin::Up);
        half.set(0, Spin::Down);
        assert!(w.accuracy(&half) > w.accuracy(&all_a));
    }

    #[test]
    fn solver_balances_small_portfolio() {
        let w = AssetAllocation::new(24, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let init = SpinVector::random(24, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let result = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), 5));
        let acc = w.accuracy(&result.spins);
        assert!(acc > 0.95, "partition accuracy {acc}");
    }

    #[test]
    fn lower_resolution_reduces_final_accuracy_on_average() {
        // Fig. 19d trend: 2-bit quantization partitions worse than 16-bit.
        let mut acc2 = 0.0;
        let mut acc16 = 0.0;
        for seed in 0..5 {
            for (bits, acc) in [(2, &mut acc2), (16, &mut acc16)] {
                let w = AssetAllocation::with_resolution(30, seed, bits);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let init = SpinVector::random(30, &mut rng);
                let mut solver = CpuReferenceSolver::new();
                let r = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), seed));
                *acc += w.accuracy(&r.spins);
            }
        }
        assert!(acc16 > acc2, "16-bit ({acc16}) should beat 2-bit ({acc2})");
    }

    #[test]
    fn shape_matches_paper_view() {
        let w = AssetAllocation::new(1000, 0);
        let s = w.shape();
        assert_eq!(s.spins, 1000);
        assert_eq!(s.neighbors_per_spin, 1);
        assert_eq!(s.resolution_bits, 7);
        assert_eq!(w.kind(), CopKind::AssetAllocation);
        assert!(w.name().contains("m=1000"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_asset() {
        let _ = AssetAllocation::new(1, 0);
    }

    #[test]
    fn max_resolution_pair_products_fit_i32_exactly() {
        // Regression for the removed clamp: at the 16-bit value cap the
        // pair products must fit i32 by construction, so the graph must
        // carry them exactly (no saturation anywhere).
        for bits in [16, 24, 32] {
            let w = AssetAllocation::with_resolution(40, 7, bits);
            let limit = i64::from(i16::MAX) * i64::from(i16::MAX);
            for i in 0..40usize {
                for (j, w_ij) in w.graph().neighbors(i) {
                    let expected = -(i64::from(w.quantized_values()[i])
                        * i64::from(w.quantized_values()[j as usize]));
                    assert_eq!(i64::from(w_ij), expected, "edge ({i},{j}) not exact");
                    assert!(i64::from(w_ij).abs() <= limit);
                }
            }
        }
    }
}
