//! Quantization of real-valued problem coefficients to R-bit signed ICs.
//!
//! SACHI's mixed encoding is reconfigurable to any resolution up to 32-bit
//! (Sec. IV.C); Fig. 19c/d studies what happens to convergence and
//! accuracy as `R` shrinks. This module is the single place where raw
//! domain quantities (dollars, pixel differences, distances, bond
//! strengths) become R-bit interaction coefficients, so every workload
//! degrades under exactly the same rule.

/// Quantizes `values` to signed `bits`-bit integers, preserving sign and
/// relative magnitude.
///
/// The largest magnitude maps to `2^(bits-1) - 1`; non-zero inputs are kept
/// non-zero (rounded away from zero to at least ±1) so that quantization
/// never erases a constraint entirely.
///
/// ```
/// use sachi_workloads::quantize::quantize_to_bits;
/// let q = quantize_to_bits(&[1000, -500, 10, 0], 4);
/// assert_eq!(q, vec![7, -3, 1, 0]); // max magnitude -> 7 = 2^3 - 1
/// ```
///
/// # Panics
///
/// Panics if `bits` is outside `2..=32`.
pub fn quantize_to_bits(values: &[i64], bits: u32) -> Vec<i32> {
    assert!(
        (2..=32).contains(&bits),
        "resolution must be 2..=32 bits, got {bits}"
    );
    let max_abs = values.iter().map(|v| v.abs()).max().unwrap_or(0);
    if max_abs == 0 {
        return vec![0; values.len()];
    }
    let limit = (1i64 << (bits - 1)) - 1;
    values
        .iter()
        .map(|&v| {
            if v == 0 {
                return 0;
            }
            let scaled = (v as i128 * limit as i128) / max_abs as i128;
            let mut q = scaled as i64;
            if q == 0 {
                q = v.signum();
            }
            q as i32
        })
        .collect()
}

/// Quantization error as a normalized L1 distance in `[0, 1]`:
/// `Σ |v/maxv - q/maxq| / n`. Useful for asserting that more bits means
/// less error.
pub fn quantization_error(values: &[i64], quantized: &[i32]) -> f64 {
    assert_eq!(values.len(), quantized.len(), "length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let max_v = values.iter().map(|v| v.abs()).max().unwrap_or(0).max(1) as f64;
    let max_q = quantized
        .iter()
        .map(|q| (*q as i64).abs())
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let sum: f64 = values
        .iter()
        .zip(quantized.iter())
        .map(|(&v, &q)| (v as f64 / max_v - q as f64 / max_q).abs())
        .sum();
    sum / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_magnitude_maps_to_limit() {
        let q = quantize_to_bits(&[100, -100, 50], 8);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert_eq!(q[2], 63);
    }

    #[test]
    fn nonzero_inputs_stay_nonzero() {
        let q = quantize_to_bits(&[1_000_000, 1, -1], 2);
        assert_eq!(q[0], 1); // 2-bit signed limit is 1
        assert_eq!(q[1], 1);
        assert_eq!(q[2], -1);
    }

    #[test]
    fn zeros_stay_zero() {
        assert_eq!(quantize_to_bits(&[0, 0], 8), vec![0, 0]);
        assert_eq!(quantize_to_bits(&[], 8), Vec::<i32>::new());
    }

    #[test]
    fn more_bits_less_error() {
        let values: Vec<i64> = (1..200).map(|i| i * 37 % 1999).collect();
        let mut last = f64::INFINITY;
        for bits in [2, 4, 8, 16] {
            let q = quantize_to_bits(&values, bits);
            let err = quantization_error(&values, &q);
            assert!(
                err <= last + 1e-12,
                "error grew at {bits} bits: {err} > {last}"
            );
            last = err;
        }
        // 16-bit on values < 2000 is lossless up to rounding.
        assert!(last < 1e-3, "16-bit error too large: {last}");
    }

    #[test]
    fn idempotent_at_sufficient_bits() {
        let values = [3i64, -7, 12, 0];
        let q = quantize_to_bits(&values, 16);
        // Relative magnitudes preserved exactly after rescaling.
        let limit = ((1i64 << 15) - 1) as f64;
        for (v, q) in values.iter().zip(q.iter()) {
            let expected = (*v as f64) * limit / 12.0;
            assert!((expected - *q as f64).abs() <= 1.0, "{v} -> {q}");
        }
    }

    #[test]
    #[should_panic(expected = "resolution must be")]
    fn rejects_33_bits() {
        let _ = quantize_to_bits(&[1], 33);
    }

    #[test]
    fn handles_i64_extremes_without_overflow() {
        let q = quantize_to_bits(&[i64::MAX, i64::MAX / 2, -(i64::MAX / 4)], 8);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], 63);
        assert_eq!(q[2], -31);
    }
}
