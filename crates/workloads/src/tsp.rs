//! Traveling salesman, Sec. V.2c — in two formulations.
//!
//! The paper evaluates the *decision* version: "this problem checks if
//! `H = Σ J_ij σ_i σ_j < W`", with `J_ij` the distance between cities and
//! the Ising machine iterating on the complete distance graph. That is what
//! the performance/energy experiments run, and [`TspDecision`] reproduces
//! it.
//!
//! For the solution-quality comparisons (Fig. 1, Fig. 16), a decision check
//! alone cannot yield a tour, so we also implement the standard Lucas
//! quadratic formulation ([`TspTour`]): `n^2` one-hot spins `x_{v,p}`
//! ("city v occupies tour position p") with penalty terms enforcing the
//! permutation structure and distance terms scoring the tour. Decoded
//! tours are scored against a nearest-neighbor + 2-opt reference
//! ([`two_opt_tour`]), the same algorithm that stands in for Concorde in
//! `sachi-baselines::optsolv`.

use crate::maxcut::{best_cut_reference, cut_weight};
use crate::quantize::quantize_to_bits;
use crate::qubo::QuboBuilder;
use crate::spec::{CopKind, Workload, WorkloadShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi_ising::graph::{GraphBuilder, IsingGraph};
use sachi_ising::spin::{Spin, SpinVector};

/// Generates `n` random city coordinates in the unit square.
pub fn random_cities(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Integer Euclidean distance matrix (scaled by 100).
pub fn distance_matrix(coords: &[(f64, f64)]) -> Vec<Vec<i64>> {
    let n = coords.len();
    let mut d = vec![vec![0i64; n]; n];
    for i in 0..n {
        for j in 0..n {
            let dx = coords[i].0 - coords[j].0;
            let dy = coords[i].1 - coords[j].1;
            d[i][j] = ((dx * dx + dy * dy).sqrt() * 100.0).round() as i64;
        }
    }
    d
}

/// Length of a cyclic tour under a distance matrix.
///
/// # Panics
///
/// Panics if the tour is empty.
pub fn tour_length(tour: &[usize], dist: &[Vec<i64>]) -> i64 {
    assert!(!tour.is_empty(), "tour must not be empty");
    let n = tour.len();
    (0..n).map(|i| dist[tour[i]][tour[(i + 1) % n]]).sum()
}

/// Nearest-neighbor construction followed by 2-opt improvement — the
/// Concorde stand-in reference (see DESIGN.md substitution table).
pub fn two_opt_tour(dist: &[Vec<i64>]) -> Vec<usize> {
    let n = dist.len();
    if n == 0 {
        return Vec::new();
    }
    // Nearest neighbor from city 0.
    let mut tour = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut current = 0usize;
    visited[0] = true;
    tour.push(0);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&j| !visited[j])
            .min_by_key(|&j| dist[current][j])
            .expect("unvisited city exists");
        visited[next] = true;
        tour.push(next);
        current = next;
    }
    // 2-opt until no improving swap.
    let mut improved = true;
    while improved {
        improved = false;
        for a in 0..n.saturating_sub(1) {
            for b in (a + 2)..n {
                if a == 0 && b == n - 1 {
                    continue; // same edge
                }
                let (i, j) = (tour[a], tour[a + 1]);
                let (k, l) = (tour[b], tour[(b + 1) % n]);
                // Saturating: the matrix is caller-supplied, so extreme
                // entries must not wrap the improvement test's sign.
                let delta = dist[i][k]
                    .saturating_add(dist[j][l])
                    .saturating_sub(dist[i][j])
                    .saturating_sub(dist[k][l]);
                if delta < 0 {
                    tour[a + 1..=b].reverse();
                    improved = true;
                }
            }
        }
    }
    tour
}

/// The paper's decision-version TSP: the complete distance graph with
/// `J_ij = -d_ij` (max-cut form) and the `H < W` feasibility check.
#[derive(Debug, Clone)]
pub struct TspDecision {
    coords: Vec<(f64, f64)>,
    graph: IsingGraph,
    resolution_bits: u32,
    reference_cut: i64,
    seed: u64,
}

impl TspDecision {
    /// Builds an `n`-city decision instance at the Fig. 4 default
    /// resolution (5-bit).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_resolution(
            n,
            seed,
            CopKind::TravelingSalesman.typical_resolution_bits(),
        )
    }

    /// Builds an instance with explicit IC resolution.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `bits` is outside `2..=32`.
    pub fn with_resolution(n: usize, seed: u64, bits: u32) -> Self {
        assert!(n >= 3, "TSP needs at least 3 cities");
        let coords = random_cities(n, seed);
        let dist = distance_matrix(&coords);
        let mut raw = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                raw.push(dist[i][j]);
            }
        }
        let quantized = quantize_to_bits(&raw, bits);
        let mut builder = GraphBuilder::new(n);
        let mut idx = 0;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                builder.push_edge(i, j, -quantized[idx]);
                idx += 1;
            }
        }
        let graph = builder
            .build()
            .expect("decision TSP graph construction cannot fail");
        let reference_cut = best_cut_reference(&graph, seed);
        TspDecision {
            coords,
            graph,
            resolution_bits: bits,
            reference_cut,
            seed,
        }
    }

    /// The city coordinates.
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// The paper's feasibility check: is the Hamiltonian of `spins` below
    /// the threshold `w`?
    pub fn hamiltonian_below(&self, spins: &SpinVector, w: i64) -> bool {
        sachi_ising::hamiltonian::energy(&self.graph, spins) < w
    }

    /// Separation weight (cut) achieved by `spins`.
    pub fn cut(&self, spins: &SpinVector) -> i64 {
        cut_weight(&self.graph, spins)
    }
}

impl Workload for TspDecision {
    fn kind(&self) -> CopKind {
        CopKind::TravelingSalesman
    }

    fn name(&self) -> String {
        format!(
            "tsp-decision(n={}, R={}, seed={})",
            self.coords.len(),
            self.resolution_bits,
            self.seed
        )
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        let n = self.coords.len() as u64;
        WorkloadShape::new(n, n - 1, self.resolution_bits)
    }

    fn accuracy(&self, spins: &SpinVector) -> f64 {
        if self.reference_cut == 0 {
            return 1.0;
        }
        (self.cut(spins) as f64 / self.reference_cut as f64).clamp(0.0, 1.0)
    }
}

/// Lucas quadratic TSP: `n^2` spins, one-hot per city and per position.
#[derive(Debug, Clone)]
pub struct TspTour {
    coords: Vec<(f64, f64)>,
    dist: Vec<Vec<i64>>,
    quantized_dist: Vec<Vec<i64>>,
    graph: IsingGraph,
    resolution_bits: u32,
    reference_length: i64,
    seed: u64,
}

impl TspTour {
    /// Builds an `n`-city tour instance (`n^2` spins) at the default 5-bit
    /// distance resolution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `3..=64` (the quadratic blow-up makes
    /// larger functional instances pointless; use [`TspDecision`] for
    /// architecture-scale runs).
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_resolution(
            n,
            seed,
            CopKind::TravelingSalesman.typical_resolution_bits(),
        )
    }

    /// Builds an instance with explicit distance resolution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `3..=64` or `bits` is outside `2..=32`.
    pub fn with_resolution(n: usize, seed: u64, bits: u32) -> Self {
        assert!(
            (3..=64).contains(&n),
            "TspTour supports 3..=64 cities, got {n}"
        );
        let coords = random_cities(n, seed);
        let dist = distance_matrix(&coords);
        // Quantize distances to R bits.
        let flat: Vec<i64> = dist.iter().flatten().copied().collect();
        let qflat = quantize_to_bits(&flat, bits);
        let quantized_dist: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| qflat[i * n + j] as i64).collect())
            .collect();
        let max_d = quantized_dist
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);

        // Lucas TSP as a QUBO: one-hot constraints per city and per
        // position, plus distance terms. Penalty weight A > B * max_d
        // guarantees constraint dominance (B = 1 here).
        let a = 2 * max_d;
        let idx = |v: usize, p: usize| v * n + p;
        let mut q = QuboBuilder::new(n * n);
        // "Each city exactly once" and "each position exactly once".
        for v in 0..n {
            let row: Vec<usize> = (0..n).map(|p| idx(v, p)).collect();
            q.exactly_k_penalty(&row, 1, a);
        }
        for p in 0..n {
            let col: Vec<usize> = (0..n).map(|v| idx(v, p)).collect();
            q.exactly_k_penalty(&col, 1, a);
        }
        // Tour length: Σ_{u != v} d_uv Σ_p x_up x_v,(p+1 mod n).
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                for p in 0..n {
                    q.quadratic(idx(u, p), idx(v, (p + 1) % n), quantized_dist[u][v]);
                }
            }
        }
        let graph = q
            .build()
            .expect("TSP tour graph construction cannot fail")
            .graph()
            .clone();
        let reference_length = tour_length(&two_opt_tour(&dist), &dist);
        TspTour {
            coords,
            dist,
            quantized_dist,
            graph,
            resolution_bits: bits,
            reference_length,
            seed,
        }
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.coords.len()
    }

    /// The city coordinates.
    pub fn coords(&self) -> &[(f64, f64)] {
        &self.coords
    }

    /// The integer distance matrix (unquantized).
    pub fn distances(&self) -> &[Vec<i64>] {
        &self.dist
    }

    /// The R-bit quantized distances the Ising coefficients were built
    /// from.
    pub fn quantized_distances(&self) -> &[Vec<i64>] {
        &self.quantized_dist
    }

    /// The 2-opt reference tour length.
    pub fn reference_length(&self) -> i64 {
        self.reference_length
    }

    /// Decodes a spin assignment into a tour, repairing violations: each
    /// position takes its set city if unique, and remaining cities are
    /// appended greedily by nearest distance.
    pub fn decode_tour(&self, spins: &SpinVector) -> Vec<usize> {
        let n = self.num_cities();
        let mut tour: Vec<Option<usize>> = vec![None; n];
        let mut used = vec![false; n];
        for p in 0..n {
            let mut candidate = None;
            for v in 0..n {
                if spins.get(v * n + p) == Spin::Up && !used[v] {
                    if candidate.is_none() {
                        candidate = Some(v);
                    } else {
                        candidate = None; // ambiguous: leave for repair
                        break;
                    }
                }
            }
            if let Some(v) = candidate {
                tour[p] = Some(v);
                used[v] = true;
            }
        }
        // Repair: fill empty positions with nearest unused city to the
        // previous fixed city.
        let mut result = Vec::with_capacity(n);
        for p in 0..n {
            match tour[p] {
                Some(v) => result.push(v),
                None => {
                    let prev = result.last().copied();
                    let next = (0..n)
                        .filter(|&v| !used[v])
                        .min_by_key(|&v| prev.map_or(0, |u| self.dist[u][v]))
                        .expect("an unused city must exist");
                    used[next] = true;
                    result.push(next);
                }
            }
        }
        result
    }

    /// Tour length of a decoded assignment.
    pub fn decoded_length(&self, spins: &SpinVector) -> i64 {
        tour_length(&self.decode_tour(spins), &self.dist)
    }
}

impl Workload for TspTour {
    fn kind(&self) -> CopKind {
        CopKind::TravelingSalesman
    }

    fn name(&self) -> String {
        format!(
            "tsp-tour(n={}, R={}, seed={})",
            self.num_cities(),
            self.resolution_bits,
            self.seed
        )
    }

    fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    fn shape(&self) -> WorkloadShape {
        let spins = (self.num_cities() * self.num_cities()) as u64;
        WorkloadShape::new(
            spins,
            self.graph.max_degree() as u64,
            self.graph.bits_required(),
        )
    }

    /// Reference length over achieved length, clamped to `[0, 1]`.
    fn accuracy(&self, spins: &SpinVector) -> f64 {
        let achieved = self.decoded_length(spins).max(1);
        (self.reference_length as f64 / achieved as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::prelude::*;

    #[test]
    fn distance_matrix_is_symmetric_zero_diagonal() {
        let coords = random_cities(6, 1);
        let d = distance_matrix(&coords);
        for i in 0..6 {
            assert_eq!(d[i][i], 0);
            for j in 0..6 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }

    #[test]
    fn two_opt_improves_or_matches_nearest_neighbor() {
        let coords = random_cities(15, 3);
        let d = distance_matrix(&coords);
        let tour = two_opt_tour(&d);
        assert_eq!(tour.len(), 15);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..15).collect::<Vec<_>>(),
            "tour must visit every city once"
        );
        // 2-opt tours of random points are well below the worst case.
        let worst: i64 = (0..15).map(|i| d[i][(i + 1) % 15]).sum();
        assert!(tour_length(&tour, &d) <= worst * 2);
    }

    #[test]
    fn two_opt_finds_square_optimum() {
        // Four corners of a square: optimal tour is the perimeter.
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)];
        let d = distance_matrix(&coords);
        let tour = two_opt_tour(&d);
        assert_eq!(tour_length(&tour, &d), 400);
    }

    #[test]
    fn decision_graph_shape_is_complete() {
        let w = TspDecision::new(10, 4);
        assert_eq!(w.graph().num_edges(), 45);
        assert_eq!(w.graph().max_degree(), 9);
        let s = w.shape();
        assert_eq!(s.spins, 10);
        assert_eq!(s.neighbors_per_spin, 9);
        assert_eq!(s.resolution_bits, 5);
        assert!(w.name().contains("n=10"));
        assert_eq!(w.coords().len(), 10);
    }

    #[test]
    fn decision_hamiltonian_threshold() {
        let w = TspDecision::new(8, 5);
        let spins = SpinVector::filled(8, Spin::Up);
        let h = sachi_ising::hamiltonian::energy(w.graph(), &spins);
        assert!(w.hamiltonian_below(&spins, h + 1));
        assert!(!w.hamiltonian_below(&spins, h));
    }

    #[test]
    fn decision_solver_accuracy_high() {
        let w = TspDecision::new(16, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let init = SpinVector::random(16, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let r = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), 8));
        assert!(
            w.accuracy(&r.spins) > 0.9,
            "accuracy {}",
            w.accuracy(&r.spins)
        );
    }

    #[test]
    fn tour_instance_builds_n_squared_spins() {
        let w = TspTour::new(5, 1);
        assert_eq!(w.graph().num_spins(), 25);
        assert_eq!(w.num_cities(), 5);
        assert!(w.reference_length() > 0);
    }

    #[test]
    fn decode_repairs_invalid_assignments() {
        let w = TspTour::new(4, 2);
        // All spins down: nothing selected; repair must produce a permutation.
        let empty = SpinVector::filled(16, Spin::Down);
        let tour = w.decode_tour(&empty);
        let mut sorted = tour.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // A valid one-hot assignment decodes exactly.
        let mut valid = SpinVector::filled(16, Spin::Down);
        for (p, v) in [(0usize, 2usize), (1, 0), (2, 3), (3, 1)] {
            valid.set(v * 4 + p, Spin::Up);
        }
        assert_eq!(w.decode_tour(&valid), vec![2, 0, 3, 1]);
    }

    #[test]
    fn annealed_tour_approaches_reference() {
        let w = TspTour::new(6, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let init = SpinVector::random(36, &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let mut best = 0.0f64;
        for seed in 0..5 {
            let r = solver.solve(w.graph(), &init, &SolveOptions::for_graph(w.graph(), seed));
            best = best.max(w.accuracy(&r.spins));
        }
        assert!(best > 0.85, "best tour accuracy {best}");
    }

    #[test]
    #[should_panic(expected = "3..=64")]
    fn tour_rejects_oversized_instances() {
        let _ = TspTour::new(65, 0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn decision_rejects_tiny_instances() {
        let _ = TspDecision::new(2, 0);
    }
}
