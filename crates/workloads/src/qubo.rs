//! QUBO construction and exact conversion to the Ising model.
//!
//! Many of Lucas's NP-problem formulations (the paper’s reference \[11\])
//! are naturally written as quadratic unconstrained binary optimization
//! over `x ∈ {0,1}`. SACHI consumes Ising problems over `σ ∈ {−1,+1}`.
//! [`QuboBuilder`] accumulates integer QUBO terms and converts them
//! exactly — the substitution `x = (1+σ)/2` is applied with the whole
//! objective scaled by 4 so every Ising coefficient stays an integer:
//!
//! ```text
//! 4·c·x_i x_j = c·σ_i σ_j + c·σ_i + c·σ_j + c
//! 4·l·x_i     = 2l·σ_i + 2l
//! ```
//!
//! Minimizing `Σ Q σσ + Σ L σ + const` equals minimizing our
//! `H = −Σ J σσ − Σ h σ` with `J = −Q`, `h = −L`.

use crate::encode::{checked_coefficient, EncodeError};
use sachi_ising::graph::{GraphBuilder, IsingGraph};
use sachi_ising::spin::{Spin, SpinVector};
use std::collections::BTreeMap;

/// Incremental builder for integer QUBO objectives.
///
/// ```
/// use sachi_workloads::qubo::QuboBuilder;
/// use sachi_ising::spin::{Spin, SpinVector};
///
/// // minimize (x0 - x1)^2 = x0 - 2 x0 x1 + x1
/// let mut q = QuboBuilder::new(2);
/// q.linear(0, 1).linear(1, 1).quadratic(0, 1, -2);
/// let problem = q.build()?;
/// let equal = SpinVector::from_spins(&[Spin::Up, Spin::Up]);
/// let differ = SpinVector::from_spins(&[Spin::Up, Spin::Down]);
/// assert!(problem.objective(&equal) < problem.objective(&differ));
/// # Ok::<(), sachi_workloads::encode::EncodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QuboBuilder {
    n: usize,
    linear: Vec<i64>,
    quadratic: BTreeMap<(u32, u32), i64>,
    constant: i64,
}

impl QuboBuilder {
    /// Starts a QUBO over `n` binary variables.
    pub fn new(n: usize) -> Self {
        QuboBuilder {
            n,
            linear: vec![0; n],
            quadratic: BTreeMap::new(),
            constant: 0,
        }
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.n
    }

    /// Adds `c · x_i` to the objective.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn linear(&mut self, i: usize, c: i64) -> &mut Self {
        // Saturating accumulation: a wrapped i64 could sneak back into
        // the i32 range and encode silently-wrong coefficients; a
        // saturated one is guaranteed to trip `checked_coefficient`'s
        // narrowing in `build`.
        self.linear[i] = self.linear[i].saturating_add(c);
        self
    }

    /// Adds `c · x_i x_j` to the objective (`i != j`; `x^2 = x` belongs in
    /// [`QuboBuilder::linear`]).
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn quadratic(&mut self, i: usize, j: usize, c: i64) -> &mut Self {
        assert!(i != j, "use linear() for diagonal terms (x^2 = x)");
        assert!(i < self.n && j < self.n, "variable out of range");
        let key = ((i.min(j)) as u32, (i.max(j)) as u32);
        let slot = self.quadratic.entry(key).or_insert(0);
        *slot = slot.saturating_add(c);
        self
    }

    /// Adds a constant offset (tracked so objectives stay comparable).
    pub fn constant(&mut self, c: i64) -> &mut Self {
        self.constant = self.constant.saturating_add(c);
        self
    }

    /// Adds the penalty `w · (k - Σ_{i∈vars} x_i)^2` — the "exactly k of
    /// these" constraint used by one-hot encodings.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn exactly_k_penalty(&mut self, vars: &[usize], k: i64, w: i64) -> &mut Self {
        // (k - Σx)^2 = k^2 - 2kΣx + Σx + 2Σ_{i<j} x_i x_j
        // Saturating products: an overflowed penalty weight saturates,
        // exceeds the i32 coefficient range, and fails `build` loudly.
        self.constant(w.saturating_mul(k).saturating_mul(k));
        let per_var = w.saturating_mul(1i64.saturating_sub(k.saturating_mul(2)));
        for (a, &i) in vars.iter().enumerate() {
            self.linear(i, per_var);
            for &j in &vars[a + 1..] {
                self.quadratic(i, j, w.saturating_mul(2));
            }
        }
        self
    }

    /// Converts to an Ising problem (exact, integer-preserving, objective
    /// scaled by 4).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::CoefficientOverflow`] when an accumulated
    /// coupling or field leaves the `i32` range the graph stores (the
    /// conversion is exact or it fails — it never clamps), and wraps any
    /// graph-construction error (cannot occur for indices validated by
    /// the builder).
    pub fn build(&self) -> Result<QuboProblem, EncodeError> {
        let mut h = vec![0i64; self.n];
        let mut builder = GraphBuilder::new(self.n);
        for (i, &l) in self.linear.iter().enumerate() {
            h[i] = l.saturating_mul(2);
        }
        for (&(i, j), &c) in &self.quadratic {
            if c != 0 {
                builder.push_edge(i, j, checked_coefficient("coupling", -c)?);
            }
            h[i as usize] = h[i as usize].saturating_add(c);
            h[j as usize] = h[j as usize].saturating_add(c);
        }
        for (i, &hi) in h.iter().enumerate() {
            builder = builder.field(i as u32, checked_coefficient("field", -hi)?);
        }
        let graph = builder.build()?;
        Ok(QuboProblem {
            graph,
            linear: self.linear.clone(),
            quadratic: self.quadratic.clone(),
            constant: self.constant,
        })
    }
}

/// A built QUBO with its exact Ising image.
#[derive(Debug, Clone)]
pub struct QuboProblem {
    graph: IsingGraph,
    linear: Vec<i64>,
    quadratic: BTreeMap<(u32, u32), i64>,
    constant: i64,
}

impl QuboProblem {
    /// The Ising graph SACHI machines iterate on.
    pub fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    /// Evaluates the original QUBO objective at a spin assignment
    /// (`σ = +1` means `x = 1`).
    pub fn objective(&self, spins: &SpinVector) -> i64 {
        let x = |i: usize| i64::from(spins.get(i) == Spin::Up);
        let mut total = self.constant;
        for (i, &l) in self.linear.iter().enumerate() {
            total += l * x(i);
        }
        for (&(i, j), &c) in &self.quadratic {
            total += c * x(i as usize) * x(j as usize);
        }
        total
    }

    /// Decodes spins to binary variables.
    pub fn decode(&self, spins: &SpinVector) -> Vec<bool> {
        spins.iter().map(|s| s == Spin::Up).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::hamiltonian::energy;

    fn all_assignments(n: usize) -> impl Iterator<Item = SpinVector> {
        (0..(1u32 << n)).map(move |mask| {
            (0..n)
                .map(|b| Spin::from_bit((mask >> b) & 1 == 1))
                .collect()
        })
    }

    #[test]
    fn ising_image_preserves_ordering_exactly() {
        // 4H_ising + const == 4*QUBO for every assignment: check the
        // affine relationship by comparing pairwise differences.
        let mut q = QuboBuilder::new(4);
        q.linear(0, 3)
            .linear(2, -5)
            .quadratic(0, 1, 7)
            .quadratic(1, 3, -2)
            .quadratic(2, 3, 4)
            .constant(11);
        let p = q.build().unwrap();
        let pairs: Vec<(i64, i64)> = all_assignments(4)
            .map(|s| (p.objective(&s), energy(p.graph(), &s)))
            .collect();
        let (q0, h0) = pairs[0];
        for &(qv, hv) in &pairs {
            assert_eq!(4 * (qv - q0), hv - h0, "Ising image not affine-equivalent");
        }
    }

    #[test]
    fn minimizer_agrees() {
        let mut q = QuboBuilder::new(5);
        q.linear(0, -3)
            .linear(4, 2)
            .quadratic(0, 1, 4)
            .quadratic(2, 3, -6)
            .quadratic(1, 4, 1);
        let p = q.build().unwrap();
        let best_qubo = all_assignments(5).min_by_key(|s| p.objective(s)).unwrap();
        let best_ising = all_assignments(5)
            .min_by_key(|s| energy(p.graph(), s))
            .unwrap();
        assert_eq!(p.objective(&best_qubo), p.objective(&best_ising));
    }

    #[test]
    fn exactly_k_penalty_is_zero_iff_satisfied() {
        let mut q = QuboBuilder::new(4);
        q.exactly_k_penalty(&[0, 1, 2, 3], 2, 1);
        let p = q.build().unwrap();
        for s in all_assignments(4) {
            let ones = s.count_up() as i64;
            let expected = (2 - ones) * (2 - ones);
            assert_eq!(p.objective(&s), expected, "penalty wrong at {ones} ones");
        }
    }

    #[test]
    fn quadratic_accumulates_and_normalizes_order() {
        let mut q = QuboBuilder::new(3);
        q.quadratic(2, 0, 5).quadratic(0, 2, 3);
        let p = q.build().unwrap();
        let s11 = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        assert_eq!(p.objective(&s11), 8);
    }

    #[test]
    fn decode_roundtrip() {
        let q = QuboBuilder::new(3);
        let p = q.build().unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        assert_eq!(p.decode(&s), vec![true, false, true]);
        assert_eq!(p.objective(&s), 0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_quadratic_rejected() {
        let mut q = QuboBuilder::new(2);
        q.quadratic(1, 1, 3);
    }

    // Regression: these inputs used to be silently clamped to i32
    // range, corrupting the encoded Hamiltonian. They must now fail
    // loudly with a typed overflow error.
    #[test]
    fn coupling_overflow_is_rejected_not_clamped() {
        let mut q = QuboBuilder::new(2);
        // -c = 2^31 exceeds i32::MAX, so the Ising coupling overflows.
        q.quadratic(0, 1, i64::from(i32::MIN));
        let err = q.build().expect_err("overflowing coupling must not clamp");
        assert_eq!(
            err,
            EncodeError::CoefficientOverflow {
                what: "coupling",
                value: 1 << 31,
            }
        );
    }

    #[test]
    fn field_overflow_is_rejected_not_clamped() {
        let mut q = QuboBuilder::new(1);
        // h[0] = 2·l overflows i32 even though l itself fits.
        q.linear(0, i64::from(i32::MAX));
        let err = q.build().expect_err("overflowing field must not clamp");
        assert!(matches!(
            err,
            EncodeError::CoefficientOverflow { what: "field", .. }
        ));
    }

    #[test]
    fn accumulated_field_overflow_from_quadratics_is_rejected() {
        // Each individual coupling fits, but the field h[i] accumulates
        // contributions from every incident quadratic term and spills.
        let big = i64::from(i32::MAX) / 2 + 1;
        let mut q = QuboBuilder::new(3);
        q.quadratic(0, 1, -big).quadratic(0, 2, -big);
        let err = q.build().expect_err("accumulated field must not clamp");
        assert!(matches!(
            err,
            EncodeError::CoefficientOverflow { what: "field", .. }
        ));
    }

    #[test]
    fn build_failure_increments_saturation_counter() {
        let before = crate::encode::saturation_count();
        let mut q = QuboBuilder::new(2);
        q.quadratic(0, 1, i64::from(i32::MIN));
        assert!(q.build().is_err());
        assert!(crate::encode::saturation_count() > before);
    }
}
