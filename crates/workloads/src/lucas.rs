//! A library of Ising formulations for classic NP problems, after Lucas,
//! "Ising formulations of many NP problems" (the paper’s reference \[11\]
//! and its Sec. VII.3 "extending the library to support Ising
//! formulation of COPs").
//!
//! Each formulation builds on [`crate::qubo::QuboBuilder`] and carries a
//! decoder plus a validity/quality check, so any Ising machine in the
//! workspace can solve it and be scored exactly.

use crate::encode::EncodeError;
use crate::qubo::{QuboBuilder, QuboProblem};
use sachi_ising::spin::SpinVector;

/// An undirected input graph for the formulations (edge list over
/// `0..n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl InputGraph {
    /// Creates an input graph.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(u, v) in &edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert!(u != v, "self-loops not allowed");
        }
        InputGraph { n, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// A cycle graph `C_n`.
    pub fn cycle(n: usize) -> Self {
        InputGraph::new(n, (0..n).map(|i| (i, (i + 1) % n)).collect())
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        InputGraph::new(n, edges)
    }

    /// The Petersen graph (10 vertices, 3-regular, chromatic number 3,
    /// minimum vertex cover 6) — a classic test instance.
    pub fn petersen() -> Self {
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        InputGraph::new(10, outer.into_iter().chain(spokes).chain(inner).collect())
    }
}

/// Max-cut: one spin per vertex; the Ising ground state maximizes the
/// number of edges with differing endpoints.
///
/// QUBO: minimize `Σ_(u,v)∈E  -(x_u + x_v - 2 x_u x_v)`.
///
/// # Errors
///
/// Propagates [`EncodeError`].
pub fn max_cut(input: &InputGraph) -> Result<QuboProblem, EncodeError> {
    let mut q = QuboBuilder::new(input.num_vertices());
    for &(u, v) in input.edges() {
        q.linear(u, -1).linear(v, -1).quadratic(u, v, 2);
    }
    q.build()
}

/// Number of cut edges under an assignment.
pub fn cut_size(input: &InputGraph, spins: &SpinVector) -> usize {
    input
        .edges()
        .iter()
        .filter(|&&(u, v)| spins.get(u) != spins.get(v))
        .count()
}

/// Minimum vertex cover: select (`x = 1`) a minimum set of vertices
/// touching every edge.
///
/// QUBO: minimize `Σ_v x_v + P Σ_(u,v)∈E (1 - x_u)(1 - x_v)` with the
/// penalty `P` exceeding the largest possible saving (here `P = 2`
/// suffices since removing one vertex saves 1 and can expose at most its
/// incident edges... we use the standard `P = 2`).
///
/// # Errors
///
/// Propagates [`EncodeError`].
pub fn vertex_cover(input: &InputGraph) -> Result<QuboProblem, EncodeError> {
    const P: i64 = 2;
    let mut q = QuboBuilder::new(input.num_vertices());
    for v in 0..input.num_vertices() {
        q.linear(v, 1);
    }
    for &(u, v) in input.edges() {
        // (1 - x_u)(1 - x_v) = 1 - x_u - x_v + x_u x_v
        q.constant(P).linear(u, -P).linear(v, -P).quadratic(u, v, P);
    }
    q.build()
}

/// Whether a selection covers every edge.
pub fn is_vertex_cover(input: &InputGraph, selected: &[bool]) -> bool {
    input
        .edges()
        .iter()
        .all(|&(u, v)| selected[u] || selected[v])
}

/// Graph k-coloring: one-hot spins `x_{v,c}` ("vertex v has color c").
/// The QUBO is zero exactly on proper colorings.
///
/// # Errors
///
/// Propagates [`EncodeError`].
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn coloring(input: &InputGraph, k: usize) -> Result<QuboProblem, EncodeError> {
    assert!(k > 0, "need at least one color");
    let n = input.num_vertices();
    let idx = |v: usize, c: usize| v * k + c;
    let mut q = QuboBuilder::new(n * k);
    // Each vertex takes exactly one color.
    for v in 0..n {
        let vars: Vec<usize> = (0..k).map(|c| idx(v, c)).collect();
        q.exactly_k_penalty(&vars, 1, 1);
    }
    // Adjacent vertices may not share a color.
    for &(u, v) in input.edges() {
        for c in 0..k {
            q.quadratic(idx(u, c), idx(v, c), 1);
        }
    }
    q.build()
}

/// Decodes a coloring assignment: `Some(colors)` if it is a proper
/// one-hot k-coloring, else `None`.
pub fn decode_coloring(input: &InputGraph, k: usize, spins: &SpinVector) -> Option<Vec<usize>> {
    let n = input.num_vertices();
    let mut colors = Vec::with_capacity(n);
    for v in 0..n {
        let chosen: Vec<usize> = (0..k).filter(|&c| spins.get(v * k + c).bit()).collect();
        match chosen.as_slice() {
            [c] => colors.push(*c),
            _ => return None,
        }
    }
    if input.edges().iter().any(|&(u, v)| colors[u] == colors[v]) {
        return None;
    }
    Some(colors)
}

/// Number partitioning over arbitrary values (the generic form of the
/// asset-allocation COP): minimize `(Σ v_i σ_i)^2`, expanded through the
/// QUBO builder.
///
/// # Errors
///
/// Propagates [`EncodeError`] — values large enough that the expanded
/// quadratic coefficients (`8·v_i·v_j`) leave the `i32` range are
/// rejected, not clamped.
pub fn number_partitioning(values: &[i64]) -> Result<QuboProblem, EncodeError> {
    // (Σ v_i σ_i)^2 with σ = 2x - 1:
    //   Σ v_i σ_i = 2 Σ v_i x_i - Σ v_i =: 2S_x - T
    //   (2S_x - T)^2 = 4 S_x^2 - 4 T S_x + T^2
    // S_x^2 = Σ v_i^2 x_i + 2 Σ_{i<j} v_i v_j x_i x_j.
    // Caller-supplied magnitudes are unbounded, so every product
    // saturates; a saturated coefficient is rejected by the i32 narrowing
    // in `QuboBuilder::build`, never silently wrapped.
    let t: i64 = values.iter().fold(0i64, |acc, &v| acc.saturating_add(v));
    let mut q = QuboBuilder::new(values.len());
    q.constant(t.saturating_mul(t));
    for (i, &vi) in values.iter().enumerate() {
        let quad_self = vi.saturating_mul(vi).saturating_mul(4);
        let cross = t.saturating_mul(vi).saturating_mul(4);
        q.linear(i, quad_self.saturating_sub(cross));
        for (j, &vj) in values.iter().enumerate().skip(i + 1) {
            q.quadratic(i, j, vi.saturating_mul(vj).saturating_mul(8));
        }
    }
    q.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::prelude::*;

    fn solve_best(problem: &QuboProblem, restarts: u64) -> SpinVector {
        let graph = problem.graph();
        let mut best: Option<(i64, SpinVector)> = None;
        for seed in 0..restarts {
            let mut rng = StdRng::seed_from_u64(seed);
            let init = SpinVector::random(graph.num_spins(), &mut rng);
            let mut solver = CpuReferenceSolver::new();
            let r = solver.solve(graph, &init, &SolveOptions::for_graph(graph, seed + 50));
            let obj = problem.objective(&r.spins);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, r.spins));
            }
        }
        best.expect("restarts > 0").1
    }

    #[test]
    fn max_cut_on_even_cycle_is_all_edges() {
        let input = InputGraph::cycle(8);
        let problem = max_cut(&input).unwrap();
        let spins = solve_best(&problem, 5);
        assert_eq!(cut_size(&input, &spins), 8, "even cycle is bipartite");
    }

    #[test]
    fn max_cut_on_odd_cycle_is_n_minus_1() {
        let input = InputGraph::cycle(7);
        let problem = max_cut(&input).unwrap();
        let spins = solve_best(&problem, 8);
        assert_eq!(cut_size(&input, &spins), 6);
    }

    #[test]
    fn max_cut_k4_is_4() {
        let input = InputGraph::complete(4);
        let problem = max_cut(&input).unwrap();
        let spins = solve_best(&problem, 5);
        assert_eq!(cut_size(&input, &spins), 4, "K4 max cut is 2+2 = 4 edges");
    }

    #[test]
    fn vertex_cover_of_petersen_is_6() {
        let input = InputGraph::petersen();
        let problem = vertex_cover(&input).unwrap();
        let spins = solve_best(&problem, 12);
        let selected = problem.decode(&spins);
        assert!(
            is_vertex_cover(&input, &selected),
            "solution must cover all edges"
        );
        let size = selected.iter().filter(|&&s| s).count();
        assert_eq!(size, 6, "Petersen's minimum vertex cover is 6, got {size}");
    }

    #[test]
    fn vertex_cover_of_cycle() {
        let input = InputGraph::cycle(6);
        let problem = vertex_cover(&input).unwrap();
        let spins = solve_best(&problem, 8);
        let selected = problem.decode(&spins);
        assert!(is_vertex_cover(&input, &selected));
        assert_eq!(selected.iter().filter(|&&s| s).count(), 3);
    }

    #[test]
    fn petersen_is_3_colorable_but_not_2() {
        let input = InputGraph::petersen();
        let three = coloring(&input, 3).unwrap();
        let spins = solve_best(&three, 20);
        assert_eq!(
            three.objective(&spins),
            0,
            "3-coloring penalty should vanish"
        );
        let colors = decode_coloring(&input, 3, &spins).expect("proper 3-coloring");
        assert_eq!(colors.len(), 10);

        let two = coloring(&input, 2).unwrap();
        let spins = solve_best(&two, 20);
        assert!(
            two.objective(&spins) > 0,
            "Petersen graph is not 2-colorable"
        );
        assert!(decode_coloring(&input, 2, &spins).is_none());
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let input = InputGraph::cycle(5);
        let two = coloring(&input, 2).unwrap();
        let spins = solve_best(&two, 12);
        assert!(decode_coloring(&input, 2, &spins).is_none());
        let three = coloring(&input, 3).unwrap();
        let spins = solve_best(&three, 12);
        assert!(decode_coloring(&input, 3, &spins).is_some());
    }

    #[test]
    fn number_partitioning_objective_is_squared_imbalance() {
        let values = [3i64, 1, 1, 2, 2, 1];
        let problem = number_partitioning(&values).unwrap();
        for mask in 0..(1u32 << values.len()) {
            let spins: SpinVector = (0..values.len())
                .map(|b| Spin::from_bit((mask >> b) & 1 == 1))
                .collect();
            let imbalance: i64 = values
                .iter()
                .zip(spins.iter())
                .map(|(&v, s)| v * s.value())
                .sum();
            assert_eq!(problem.objective(&spins), imbalance * imbalance);
        }
    }

    #[test]
    fn number_partitioning_finds_perfect_split() {
        let values = [3i64, 1, 1, 2, 2, 1]; // total 10 -> perfect split 5|5
        let problem = number_partitioning(&values).unwrap();
        let spins = solve_best(&problem, 8);
        assert_eq!(problem.objective(&spins), 0, "perfect partition exists");
    }

    #[test]
    fn input_graph_constructors() {
        assert_eq!(InputGraph::cycle(5).edges().len(), 5);
        assert_eq!(InputGraph::complete(5).edges().len(), 10);
        let p = InputGraph::petersen();
        assert_eq!(p.num_vertices(), 10);
        assert_eq!(p.edges().len(), 15);
        let mut degree = [0usize; 10];
        for &(u, v) in p.edges() {
            degree[u] += 1;
            degree[v] += 1;
        }
        assert!(degree.iter().all(|&d| d == 3), "Petersen is 3-regular");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_graph_validates() {
        let _ = InputGraph::new(2, vec![(0, 5)]);
    }
}
