//! The mixed encoding scheme of Sec. IV.C and Fig. 9.
//!
//! Spins `+1/-1` are encoded as bits `1/0`; interaction coefficients are
//! R-bit two's complement. The dot product `J_ij * σ_j` then reduces to a
//! bitwise XNOR that 8T SRAM computes in place (eqn. 4):
//!
//! ```text
//! J * σ = J XNOR σ        if σ = +1   (XNOR with 1 is identity)
//! J * σ = (J XNOR σ) + 1  if σ = -1   (XNOR with 0 is ~J; +1 completes
//!                                      two's-complement negation)
//! ```
//!
//! The reuse-aware variant (eqn. 5) drives the *target* spin `σ_i` on the
//! word-line instead of each neighbor `σ_j`, recovering `J * σ_j` from
//! `J XNOR σ_i` plus the equality bit `σ_i XNOR σ_j`:
//!
//! * spins equal   → use the XNOR output;
//! * spins differ  → use the XOR output (the complement);
//! * **+1 exactly when `σ_j = -1`** (i.e. cases 2 and 3 of eqn. 5).
//!
//! ### Erratum
//!
//! The paper's eqn. 5 places the "+1" on the `σ_i < 0` cases (2 and 4).
//! Two's-complement negation requires the "+1" whenever the *multiplicand*
//! `σ_j` is negative: case 2 (`σ_i < 0`, spins equal → `σ_j < 0`, +1
//! needed — agrees) and case 3 (`σ_i > 0`, spins differ → `σ_j < 0`, +1
//! needed — the paper omits it), while case 4 (`σ_i < 0`, spins differ →
//! `σ_j > +1`... `σ_j = +1`, no +1 needed — the paper adds one). The
//! property tests in this module check all four cases against plain signed
//! multiplication, which pins the corrected form.

use sachi_ising::spin::Spin;
use std::fmt;

/// Error from encoding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// Resolution outside the supported `2..=32` range.
    UnsupportedResolution {
        /// The requested resolution in bits.
        bits: u32,
    },
    /// A coefficient does not fit in the configured resolution.
    ValueOutOfRange {
        /// The offending value.
        value: i64,
        /// The configured resolution in bits.
        bits: u32,
    },
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::UnsupportedResolution { bits } => {
                write!(
                    f,
                    "unsupported IC resolution: {bits} bits (mixed encoding supports 2..=32)"
                )
            }
            EncodingError::ValueOutOfRange { value, bits } => {
                write!(
                    f,
                    "coefficient {value} does not fit in {bits}-bit two's complement"
                )
            }
        }
    }
}

impl std::error::Error for EncodingError {}

/// R-bit mixed encoding, reconfigurable from 2 to 32 bits ("upto signed
/// 32-bit", Fig. 3).
///
/// ```
/// use sachi_core::encoding::MixedEncoding;
/// use sachi_ising::spin::Spin;
///
/// let enc = MixedEncoding::new(9)?;
/// // Fig. 9's worked example: J = 135 (9'h087) times σ = -1 (bit 0):
/// assert_eq!(enc.xnor_product(135, Spin::Down), -135);
/// assert_eq!(enc.xnor_product(-135, Spin::Down), 135);
/// assert_eq!(enc.xnor_product(135, Spin::Up), 135);
/// # Ok::<(), sachi_core::encoding::EncodingError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MixedEncoding {
    bits: u32,
}

impl MixedEncoding {
    /// Creates an encoding of the given resolution.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::UnsupportedResolution`] outside `2..=32`.
    pub fn new(bits: u32) -> Result<Self, EncodingError> {
        if !(2..=32).contains(&bits) {
            return Err(EncodingError::UnsupportedResolution { bits });
        }
        Ok(MixedEncoding { bits })
    }

    /// The resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest representable coefficient, `2^(R-1) - 1`.
    pub fn max_value(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Smallest representable coefficient, `-2^(R-1)`.
    pub fn min_value(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Whether `value` is representable.
    pub fn in_range(&self, value: i64) -> bool {
        (self.min_value()..=self.max_value()).contains(&value)
    }

    /// Encodes `value` as two's-complement bits, LSB first — the column
    /// order the compute array stores an IC in.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::ValueOutOfRange`] if `value` does not fit.
    pub fn encode(&self, value: i64) -> Result<Vec<bool>, EncodingError> {
        if !self.in_range(value) {
            return Err(EncodingError::ValueOutOfRange {
                value,
                bits: self.bits,
            });
        }
        let word = (value as u64) & self.mask();
        Ok((0..self.bits).map(|b| (word >> b) & 1 == 1).collect())
    }

    /// Encodes `value` as an LSB-aligned two's-complement word — the
    /// packed, allocation-free equivalent of [`MixedEncoding::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::ValueOutOfRange`] if `value` does not fit.
    pub fn encode_word(&self, value: i64) -> Result<u64, EncodingError> {
        if !self.in_range(value) {
            return Err(EncodingError::ValueOutOfRange {
                value,
                bits: self.bits,
            });
        }
        Ok((value as u64) & self.mask())
    }

    /// Number of `u64` words one bit-plane needs to hold `lanes` lanes.
    #[must_use]
    pub fn plane_words(lanes: usize) -> usize {
        lanes.div_ceil(64).max(1)
    }

    /// Encodes `values` into bit-plane form without allocating: bit `b` of
    /// the encoding of `values[k]` lands in lane `k` of plane `b`, where
    /// plane `b` occupies `planes[b * w..(b + 1) * w]` with
    /// `w = plane_words(values.len())`. The used plane region is zeroed
    /// first, so stale lanes never leak between tuples.
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError::ValueOutOfRange`] on the first value that
    /// does not fit.
    ///
    /// # Panics
    ///
    /// Panics if `planes` holds fewer than `bits() * w` words.
    pub fn encode_into(&self, values: &[i32], planes: &mut [u64]) -> Result<(), EncodingError> {
        let w = Self::plane_words(values.len());
        let r = self.bits as usize;
        assert!(
            planes.len() >= r * w,
            "plane buffer of {} words < {r} planes x {w} words",
            planes.len()
        );
        for word in &mut planes[..r * w] {
            *word = 0;
        }
        for (lane, &v) in values.iter().enumerate() {
            let enc = self.encode_word(i64::from(v))?;
            let (wi, bit) = (lane / 64, lane % 64);
            for b in 0..r {
                planes[b * w + wi] |= ((enc >> b) & 1) << bit;
            }
        }
        Ok(())
    }

    /// Decodes lane `lane` from bit-plane form: gathers bit `lane` of each
    /// of the R planes (laid out as in [`MixedEncoding::encode_into`], or
    /// as produced by plane-at-a-time XNOR kernels) via shift/add and
    /// sign-extends — the packed equivalent of [`MixedEncoding::decode`].
    ///
    /// # Panics
    ///
    /// Panics if `planes` holds fewer than `bits() * words_per_plane`
    /// words or `lane` lies beyond `words_per_plane * 64`.
    pub fn decode_plane(&self, planes: &[u64], words_per_plane: usize, lane: usize) -> i64 {
        let (wi, bit) = (lane / 64, lane % 64);
        assert!(wi < words_per_plane, "lane {lane} beyond the plane width");
        let mut word = 0u64;
        for b in 0..self.bits as usize {
            word |= ((planes[b * words_per_plane + wi] >> bit) & 1) << b;
        }
        self.decode_word(word)
    }

    /// Sums the decoded value of **every** lane of a bit-plane block in
    /// one pass of word-parallel popcounts — the bulk equivalent of
    /// calling [`MixedEncoding::decode_plane`] per lane and adding the
    /// results. A lane's two's-complement value is
    /// `Σ_{b<R-1} bit_b·2^b − bit_{R-1}·2^{R-1}`, so the sum over lanes
    /// factors into one weighted popcount per plane: `R·w` popcounts
    /// replace `lanes·R` bit gathers. Lanes beyond the valid data must be
    /// zero (they then contribute exactly 0, as `decode_plane` would),
    /// which is what [`MixedEncoding::encode_into`] and the plane XNOR
    /// kernels guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `planes` holds fewer than `bits() * words_per_plane`
    /// words.
    pub fn decode_plane_sum(&self, planes: &[u64], words_per_plane: usize) -> i64 {
        let w = words_per_plane;
        let r = self.bits as usize;
        assert!(
            planes.len() >= r * w,
            "plane buffer of {} words < {r} planes x {w} words",
            planes.len()
        );
        let mut sum = 0i64;
        for b in 0..r {
            let ones = sachi_mem::lanes::popcount(&planes[b * w..(b + 1) * w]) as i64;
            if b == r - 1 {
                sum -= ones << b; // MSB plane carries the sign weight
            } else {
                sum += ones << b;
            }
        }
        sum
    }

    /// Sums [`MixedEncoding::decode_word`] over a slice of LSB-aligned
    /// words — the bulk finale of the row-batch kernels.
    pub fn decode_word_sum(&self, words: &[u64]) -> i64 {
        words.iter().map(|&word| self.decode_word(word)).sum()
    }

    /// Decodes LSB-first two's-complement bits (sign-extending the MSB).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the configured resolution.
    pub fn decode(&self, bits: &[bool]) -> i64 {
        assert_eq!(
            bits.len() as u32,
            self.bits,
            "bit-slice width must equal the resolution"
        );
        let mut word = 0u64;
        for (b, &bit) in bits.iter().enumerate() {
            if bit {
                word |= 1 << b;
            }
        }
        self.decode_word(word)
    }

    /// Decodes a (masked) LSB-aligned word.
    pub fn decode_word(&self, word: u64) -> i64 {
        let word = word & self.mask();
        let sign = 1u64 << (self.bits - 1);
        if word & sign != 0 {
            (word as i64) - (1i64 << self.bits)
        } else {
            word as i64
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Eqn. 4: computes `J * σ` from the XNOR of `J`'s bits with the spin
    /// bit, plus the conditional increment. Exact for every representable
    /// `J`, including `min_value` (the +1 result is carried into wider
    /// arithmetic, as the near-memory full adder does in hardware).
    pub fn xnor_product(&self, j: i64, sigma: Spin) -> i64 {
        let word = (j as u64) & self.mask();
        let broadcast = if sigma.bit() { u64::MAX } else { 0 };
        let xnor = !(word ^ broadcast) & self.mask();
        let mut value = self.decode_word(xnor);
        if sigma == Spin::Down {
            value += 1;
        }
        value
    }

    /// Eqn. 5 (corrected, see the module erratum): computes `J * σ_j` from
    /// the XNOR of `J` with the *target* spin `σ_i` plus the equality bit
    /// `σ_i XNOR σ_j`.
    pub fn reuse_aware_product(&self, j: i64, sigma_i: Spin, sigma_j: Spin) -> i64 {
        let word = (j as u64) & self.mask();
        let broadcast = if sigma_i.bit() { u64::MAX } else { 0 };
        let xnor = !(word ^ broadcast) & self.mask();
        let equal = sigma_i == sigma_j; // σ_i XNOR σ_j, computed in-array
        let selected = if equal { xnor } else { !xnor & self.mask() };
        let mut value = self.decode_word(selected);
        if sigma_j == Spin::Down {
            value += 1;
        }
        value
    }

    /// The *paper's* eqn. 5 verbatim (+1 on the `σ_i < 0` cases), retained
    /// so the erratum is checkable rather than asserted: this version is
    /// wrong exactly when the spins differ.
    pub fn reuse_aware_product_as_printed(&self, j: i64, sigma_i: Spin, sigma_j: Spin) -> i64 {
        let word = (j as u64) & self.mask();
        let broadcast = if sigma_i.bit() { u64::MAX } else { 0 };
        let xnor = !(word ^ broadcast) & self.mask();
        let equal = sigma_i == sigma_j;
        let selected = if equal { xnor } else { !xnor & self.mask() };
        let mut value = self.decode_word(selected);
        if sigma_i == Spin::Down {
            value += 1;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn resolution_bounds() {
        assert!(MixedEncoding::new(1).is_err());
        assert!(MixedEncoding::new(33).is_err());
        for bits in 2..=32 {
            assert!(MixedEncoding::new(bits).is_ok());
        }
        let err = MixedEncoding::new(40).unwrap_err();
        assert!(format!("{err}").contains("40"));
    }

    #[test]
    fn encode_decode_roundtrip_all_4bit_values() {
        let enc = MixedEncoding::new(4).unwrap();
        assert_eq!(enc.max_value(), 7);
        assert_eq!(enc.min_value(), -8);
        for v in -8..=7i64 {
            let bits = enc.encode(v).unwrap();
            assert_eq!(bits.len(), 4);
            assert_eq!(enc.decode(&bits), v, "roundtrip of {v}");
        }
        assert!(enc.encode(8).is_err());
        assert!(enc.encode(-9).is_err());
    }

    #[test]
    fn fig9_worked_rows() {
        // Fig. 9: R=9 with J = ±135, R=3 with J = ±3, against σ = ±1.
        let enc9 = MixedEncoding::new(9).unwrap();
        // 135 = 9'h087, -135 = 9'h179.
        assert_eq!(
            enc9.encode(135)
                .unwrap()
                .iter()
                .rev()
                .fold(0u64, |a, &b| a << 1 | b as u64),
            0x087
        );
        assert_eq!(
            enc9.encode(-135)
                .unwrap()
                .iter()
                .rev()
                .fold(0u64, |a, &b| a << 1 | b as u64),
            0x179
        );
        assert_eq!(enc9.xnor_product(135, Spin::Down), -135);
        assert_eq!(enc9.xnor_product(-135, Spin::Down), 135);
        assert_eq!(enc9.xnor_product(135, Spin::Up), 135);
        assert_eq!(enc9.xnor_product(-135, Spin::Up), -135);
        let enc3 = MixedEncoding::new(3).unwrap();
        // 3 = 3'h3, -3 = 3'h5.
        assert_eq!(
            enc3.encode(-3)
                .unwrap()
                .iter()
                .rev()
                .fold(0u64, |a, &b| a << 1 | b as u64),
            0x5
        );
        assert_eq!(enc3.xnor_product(3, Spin::Down), -3);
        assert_eq!(enc3.xnor_product(-3, Spin::Down), 3);
    }

    #[test]
    fn min_value_negation_carries_out() {
        // -(-8) = +8 does not fit in 4 bits; the near-memory adder carries
        // it into wider arithmetic.
        let enc = MixedEncoding::new(4).unwrap();
        assert_eq!(enc.xnor_product(-8, Spin::Down), 8);
        assert_eq!(enc.reuse_aware_product(-8, Spin::Up, Spin::Down), 8);
    }

    #[test]
    fn reuse_aware_covers_all_four_cases() {
        let enc = MixedEncoding::new(8).unwrap();
        let j = 77;
        for (si, sj) in [
            (Spin::Up, Spin::Up),
            (Spin::Down, Spin::Down),
            (Spin::Up, Spin::Down),
            (Spin::Down, Spin::Up),
        ] {
            assert_eq!(
                enc.reuse_aware_product(j, si, sj),
                j * sj.value(),
                "case ({si}, {sj})"
            );
        }
    }

    #[test]
    fn paper_eqn5_is_wrong_exactly_when_spins_differ() {
        let enc = MixedEncoding::new(8).unwrap();
        let j = 42;
        // Equal spins: printed form agrees with the corrected form.
        for s in [Spin::Up, Spin::Down] {
            assert_eq!(
                enc.reuse_aware_product_as_printed(j, s, s),
                enc.reuse_aware_product(j, s, s)
            );
        }
        // Differing spins: printed form is off by one.
        for (si, sj) in [(Spin::Up, Spin::Down), (Spin::Down, Spin::Up)] {
            let printed = enc.reuse_aware_product_as_printed(j, si, sj);
            let correct = enc.reuse_aware_product(j, si, sj);
            assert_ne!(printed, correct);
            assert_eq!((printed - correct).abs(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "bit-slice width")]
    fn decode_rejects_wrong_width() {
        let enc = MixedEncoding::new(4).unwrap();
        let _ = enc.decode(&[true, false]);
    }

    #[test]
    fn thirty_two_bit_extremes() {
        let enc = MixedEncoding::new(32).unwrap();
        assert_eq!(enc.max_value(), i32::MAX as i64);
        assert_eq!(enc.min_value(), i32::MIN as i64);
        assert_eq!(
            enc.xnor_product(i32::MAX as i64, Spin::Down),
            -(i32::MAX as i64)
        );
        assert_eq!(
            enc.xnor_product(i32::MIN as i64, Spin::Down),
            -(i32::MIN as i64)
        );
    }

    proptest! {
        #[test]
        fn xnor_product_equals_multiplication(bits in 2u32..=32, j in any::<i64>(), sigma in any::<bool>()) {
            let enc = MixedEncoding::new(bits).unwrap();
            let j = j.rem_euclid(enc.max_value() - enc.min_value() + 1) + enc.min_value();
            let sigma = Spin::from_bit(sigma);
            prop_assert!(enc.in_range(j));
            prop_assert_eq!(enc.xnor_product(j, sigma), j * sigma.value());
        }

        #[test]
        fn reuse_aware_equals_multiplication(
            bits in 2u32..=32,
            j in any::<i64>(),
            si in any::<bool>(),
            sj in any::<bool>(),
        ) {
            let enc = MixedEncoding::new(bits).unwrap();
            let j = j.rem_euclid(enc.max_value() - enc.min_value() + 1) + enc.min_value();
            let (si, sj) = (Spin::from_bit(si), Spin::from_bit(sj));
            prop_assert_eq!(enc.reuse_aware_product(j, si, sj), j * sj.value());
        }

        #[test]
        fn encode_decode_roundtrip(bits in 2u32..=32, v in any::<i64>()) {
            let enc = MixedEncoding::new(bits).unwrap();
            let v = v.rem_euclid(enc.max_value() - enc.min_value() + 1) + enc.min_value();
            let encoded = enc.encode(v).unwrap();
            prop_assert_eq!(enc.decode(&encoded), v);
        }

        #[test]
        fn spin_bit_encoding_roundtrip(bit in any::<bool>()) {
            // The paper's ±1 -> 1/0 storage convention: +1 is bit 1, -1 is
            // bit 0, and the mapping inverts losslessly in both directions.
            let sigma = Spin::from_bit(bit);
            prop_assert_eq!(sigma.bit(), bit);
            prop_assert_eq!(Spin::from_bit(sigma.bit()), sigma);
            prop_assert_eq!(sigma.value(), if bit { 1 } else { -1 });
            prop_assert_eq!((-sigma).bit(), !bit);
        }

        #[test]
        fn encode_word_matches_bitwise_encode(bits in 2u32..=32, v in any::<i64>()) {
            let enc = MixedEncoding::new(bits).unwrap();
            let v = v.rem_euclid(enc.max_value() - enc.min_value() + 1) + enc.min_value();
            let word = enc.encode_word(v).unwrap();
            let bools = enc.encode(v).unwrap();
            for (b, &bit) in bools.iter().enumerate() {
                prop_assert_eq!((word >> b) & 1 == 1, bit);
            }
            prop_assert_eq!(enc.decode_word(word), v);
            prop_assert!(enc.encode_word(enc.max_value() + 1).is_err());
        }

        #[test]
        fn plane_roundtrip_matches_scalar_encode_decode(
            bits in 2u32..=32,
            raw in prop::collection::vec(any::<i64>(), 0..100),
        ) {
            let enc = MixedEncoding::new(bits).unwrap();
            let span = enc.max_value() - enc.min_value() + 1;
            let values: Vec<i32> = raw
                .iter()
                .map(|&v| {
                    i32::try_from(v.rem_euclid(span) + enc.min_value())
                        .expect("R <= 32 keeps coefficients in i32")
                })
                .collect();
            let w = MixedEncoding::plane_words(values.len());
            let mut planes = vec![u64::MAX; bits as usize * w];
            enc.encode_into(&values, &mut planes).unwrap();
            for (lane, &v) in values.iter().enumerate() {
                prop_assert_eq!(enc.decode_plane(&planes, w, lane), i64::from(v));
            }
            // Lanes beyond the tuple decode from zeroed bits.
            for lane in values.len()..w * 64 {
                prop_assert_eq!(enc.decode_plane(&planes, w, lane), 0);
            }
        }

        #[test]
        fn decode_word_agrees_with_bitwise_decode(bits in 2u32..=32, word in any::<u64>()) {
            let enc = MixedEncoding::new(bits).unwrap();
            let lanes: Vec<bool> = (0..bits).map(|b| (word >> b) & 1 == 1).collect();
            prop_assert_eq!(enc.decode(&lanes), enc.decode_word(word));
        }

        #[test]
        fn plane_sum_matches_per_lane_decode(
            bits in 2u32..=32,
            raw in prop::collection::vec(any::<i64>(), 0..150),
        ) {
            let enc = MixedEncoding::new(bits).unwrap();
            let span = enc.max_value() - enc.min_value() + 1;
            let values: Vec<i32> = raw
                .iter()
                .map(|&v| {
                    i32::try_from(v.rem_euclid(span) + enc.min_value())
                        .expect("R <= 32 keeps coefficients in i32")
                })
                .collect();
            let w = MixedEncoding::plane_words(values.len());
            let mut planes = vec![0u64; bits as usize * w];
            enc.encode_into(&values, &mut planes).unwrap();
            let per_lane: i64 = (0..values.len())
                .map(|lane| enc.decode_plane(&planes, w, lane))
                .sum();
            prop_assert_eq!(enc.decode_plane_sum(&planes, w), per_lane);
            prop_assert_eq!(per_lane, values.iter().map(|&v| i64::from(v)).sum::<i64>());
        }

        #[test]
        fn word_sum_matches_per_word_decode(
            bits in 2u32..=32,
            words in prop::collection::vec(any::<u64>(), 0..80),
        ) {
            let enc = MixedEncoding::new(bits).unwrap();
            let per_word: i64 = words.iter().map(|&wd| enc.decode_word(wd)).sum();
            prop_assert_eq!(enc.decode_word_sum(&words), per_word);
        }
    }
}
