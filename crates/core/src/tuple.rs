//! Tuple mapping and the tuple-rep property (Sec. IV.B, Fig. 7).
//!
//! SACHI abstracts the incoming graph into *tuples*: one row of the storage
//! array per spin, holding the neighboring spin states, the connecting ICs,
//! and the external field. Because the same IC appears in the tuple of both
//! endpoints — "tuple-rep" — every tuple's `H_σ` is computable without
//! touching any other tuple, which is what lets tiles work independently.
//!
//! The price of tuple-rep is paid on *update*: when spin `j` flips, its
//! copy inside every tuple that contains it must be refreshed. A dedicated
//! region of the storage array holds the adjacency matrix; the update path
//! reads it to find the relevant tuples (Fig. 8b). [`TupleStore`] is that
//! pair of structures, and its counters feed the machine's cycle/energy
//! accounting.

use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::{Spin, SpinVector};

/// One spin's tuple: the storage-array row of Fig. 7a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpinTuple {
    /// The spin this tuple computes `H_σ` for.
    pub target: u32,
    /// Neighbor spin ids.
    pub neighbors: Vec<u32>,
    /// Connecting interaction coefficients, aligned with `neighbors`.
    pub couplings: Vec<i32>,
    /// *Copies* of the neighboring spin states (tuple-rep makes these
    /// local; they go stale unless the update path refreshes them).
    pub neighbor_spins: Vec<Spin>,
    /// External field `h_i`.
    pub field: i32,
}

impl SpinTuple {
    /// Local field `H_σ = -Σ J_ij σ_j - h_i` computed **entirely from the
    /// tuple's own copies** — the independence that tuple-rep buys.
    pub fn local_field(&self) -> i64 {
        let mut h = -(self.field as i64);
        for (j, s) in self.couplings.iter().zip(self.neighbor_spins.iter()) {
            h -= *j as i64 * s.value();
        }
        h
    }

    /// Number of neighbors (the paper's `N` for this tuple).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Storage bits of this tuple at resolution `r`: `N` neighbor-spin
    /// bits + `N` R-bit ICs + one R-bit field.
    pub fn storage_bits(&self, r: u32) -> u64 {
        self.degree() as u64 * (r as u64 + 1) + r as u64
    }
}

/// The storage array's logical content: all tuples plus the adjacency
/// index used by the update path.
#[derive(Debug, Clone)]
pub struct TupleStore {
    tuples: Vec<SpinTuple>,
    /// For each spin `j`: the list of `(tuple_index, slot)` pairs holding a
    /// copy of `σ_j` — the adjacency-matrix region of Fig. 8b.
    adjacency: Vec<Vec<(u32, u32)>>,
    /// Whether tuple-rep is enabled. The ablation (`abl_tuple_rep`)
    /// disables it, which forces cross-tuple re-reads (counted, not
    /// simulated structurally).
    tuple_rep: bool,
    spin_copy_updates: u64,
    adjacency_reads: u64,
    cross_tuple_rereads: u64,
}

impl TupleStore {
    /// Builds the store from a graph and the initial spins, with tuple-rep
    /// enabled (the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if `spins.len() != graph.num_spins()`.
    pub fn new(graph: &IsingGraph, spins: &SpinVector) -> Self {
        Self::with_tuple_rep(graph, spins, true)
    }

    /// Builds the store with explicit tuple-rep setting.
    ///
    /// # Panics
    ///
    /// Panics if `spins.len() != graph.num_spins()`.
    pub fn with_tuple_rep(graph: &IsingGraph, spins: &SpinVector, tuple_rep: bool) -> Self {
        assert_eq!(
            spins.len(),
            graph.num_spins(),
            "spin vector must match graph size"
        );
        let n = graph.num_spins();
        let mut tuples = Vec::with_capacity(n);
        let mut adjacency: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for i in 0..n {
            let mut neighbors = Vec::with_capacity(graph.degree(i));
            let mut couplings = Vec::with_capacity(graph.degree(i));
            let mut neighbor_spins = Vec::with_capacity(graph.degree(i));
            for (slot, (j, w)) in graph.neighbors(i).enumerate() {
                neighbors.push(j);
                couplings.push(w);
                neighbor_spins.push(spins.get(j as usize));
                adjacency[j as usize].push((i as u32, slot as u32));
            }
            tuples.push(SpinTuple {
                target: i as u32,
                neighbors,
                couplings,
                neighbor_spins,
                field: graph.field(i),
            });
        }
        // Tuple-rep invariant: every adjacency entry for spin j must name
        // a (tuple, slot) that actually stores a copy of σ_j, and there is
        // exactly one copy per adjacent tuple.
        debug_assert!(
            adjacency.iter().enumerate().all(|(j, entries)| {
                entries.len() == graph.degree(j)
                    && entries
                        .iter()
                        .all(|&(t, slot)| tuples[t as usize].neighbors[slot as usize] as usize == j)
            }),
            "tuple-rep construction broke the adjacency/copy correspondence"
        );
        TupleStore {
            tuples,
            adjacency,
            tuple_rep,
            spin_copy_updates: 0,
            adjacency_reads: 0,
            cross_tuple_rereads: 0,
        }
    }

    /// Number of tuples (== spins).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether tuple-rep is enabled.
    pub fn tuple_rep(&self) -> bool {
        self.tuple_rep
    }

    /// The tuple of spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tuple(&self, i: usize) -> &SpinTuple {
        &self.tuples[i]
    }

    /// Iterates all tuples in spin order.
    pub fn iter(&self) -> std::slice::Iter<'_, SpinTuple> {
        self.tuples.iter()
    }

    /// Computes the local field of spin `i`, counting the cross-tuple
    /// re-reads that would be needed *without* tuple-rep (one per neighbor
    /// whose shared IC would live only in the neighbor's tuple — on
    /// average half of them under the paper's single-copy alternative;
    /// we count the worst-case "J stored with the lower-indexed endpoint"
    /// convention: a re-read for every neighbor with a smaller index).
    pub fn local_field(&mut self, i: usize) -> i64 {
        if !self.tuple_rep {
            let t = &self.tuples[i];
            let rereads = t.neighbors.iter().filter(|&&j| (j as usize) < i).count() as u64;
            self.cross_tuple_rereads += rereads;
        }
        self.tuples[i].local_field()
    }

    /// Applies a spin update through the Fig. 8b path: reads the adjacency
    /// matrix, then refreshes `σ_j`'s copy in every relevant tuple.
    /// Returns the number of tuple entries written.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn update_spin(&mut self, j: usize, new: Spin) -> u64 {
        self.adjacency_reads += 1;
        let entries = std::mem::take(&mut self.adjacency[j]);
        let count = entries.len() as u64;
        for &(t, slot) in &entries {
            debug_assert_eq!(
                self.tuples[t as usize].neighbors[slot as usize] as usize,
                j,
                "tuple-rep adjacency corrupt: entry for spin {j} points at tuple {t} slot {slot}, which holds a different neighbor"
            );
            self.tuples[t as usize].neighbor_spins[slot as usize] = new;
        }
        self.adjacency[j] = entries;
        self.spin_copy_updates += count;
        count
    }

    /// Total spin-copy writes so far (storage-array write traffic of the
    /// update path).
    pub fn spin_copy_updates(&self) -> u64 {
        self.spin_copy_updates
    }

    /// Adjacency-matrix reads so far.
    pub fn adjacency_reads(&self) -> u64 {
        self.adjacency_reads
    }

    /// Cross-tuple re-reads that the no-tuple-rep ablation would incur.
    pub fn cross_tuple_rereads(&self) -> u64 {
        self.cross_tuple_rereads
    }

    /// Total storage bits of all tuples at resolution `r`.
    pub fn total_storage_bits(&self, r: u32) -> u64 {
        self.tuples.iter().map(|t| t.storage_bits(r)).sum()
    }

    /// Bits of the adjacency-matrix region: one bit per (spin, tuple)
    /// membership.
    pub fn adjacency_bits(&self) -> u64 {
        self.adjacency.iter().map(|v| v.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::hamiltonian::local_field;

    fn sample() -> (IsingGraph, SpinVector) {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 3)
            .edge(1, 2, -2)
            .edge(2, 3, 5)
            .edge(0, 3, 1)
            .field(1, 4)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up, Spin::Down]);
        (g, s)
    }

    #[test]
    fn tuples_mirror_graph_structure() {
        let (g, s) = sample();
        let store = TupleStore::new(&g, &s);
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        let t1 = store.tuple(1);
        assert_eq!(t1.target, 1);
        assert_eq!(t1.degree(), 2);
        assert_eq!(t1.neighbors, vec![0, 2]);
        assert_eq!(t1.couplings, vec![3, -2]);
        assert_eq!(t1.neighbor_spins, vec![Spin::Up, Spin::Up]);
        assert_eq!(t1.field, 4);
    }

    #[test]
    fn tuple_rep_duplicates_shared_ics() {
        // J_12 must appear in both tuple 1 and tuple 2 (Fig. 7b).
        let (g, s) = sample();
        let store = TupleStore::new(&g, &s);
        assert!(store.tuple(1).couplings.contains(&-2));
        assert!(store.tuple(2).couplings.contains(&-2));
        assert!(store.tuple_rep());
    }

    #[test]
    fn tuple_local_field_matches_golden() {
        let (g, s) = sample();
        let mut store = TupleStore::new(&g, &s);
        for i in 0..4 {
            assert_eq!(store.local_field(i), local_field(&g, &s, i), "spin {i}");
        }
        assert_eq!(store.cross_tuple_rereads(), 0);
    }

    #[test]
    fn update_refreshes_all_copies() {
        let (g, s) = sample();
        let mut store = TupleStore::new(&g, &s);
        // Spin 0 appears in tuples 1 and 3.
        let written = store.update_spin(0, Spin::Down);
        assert_eq!(written, 2);
        assert_eq!(store.tuple(1).neighbor_spins[0], Spin::Down);
        // Tuple 3's adjacency is canonicalized to [0, 2]: spin 0 is slot 0.
        assert_eq!(store.tuple(3).neighbor_spins[0], Spin::Down);
        assert_eq!(store.spin_copy_updates(), 2);
        assert_eq!(store.adjacency_reads(), 1);
        // Fields match a freshly built store on the updated spins.
        let mut s2 = s.clone();
        s2.set(0, Spin::Down);
        let fresh = TupleStore::new(&g, &s2);
        for i in 0..4 {
            assert_eq!(store.tuple(i).local_field(), fresh.tuple(i).local_field());
        }
    }

    #[test]
    fn no_tuple_rep_counts_rereads() {
        let (g, s) = sample();
        let mut store = TupleStore::with_tuple_rep(&g, &s, false);
        assert!(!store.tuple_rep());
        for i in 0..4 {
            store.local_field(i);
        }
        // Each of the 4 edges triggers exactly one re-read (at its
        // higher-indexed endpoint).
        assert_eq!(store.cross_tuple_rereads(), 4);
    }

    #[test]
    fn storage_footprint_formulas() {
        let g = topology::king(3, 3, |_, _| 1).unwrap();
        let s = SpinVector::filled(9, Spin::Up);
        let store = TupleStore::new(&g, &s);
        // Center tuple: 8 neighbors, R=4 -> 8*5 + 4 = 44 bits.
        assert_eq!(store.tuple(4).storage_bits(4), 44);
        // Adjacency bits = directed edge count = 2 * edges.
        assert_eq!(store.adjacency_bits(), 2 * g.num_edges() as u64);
        assert_eq!(
            store.total_storage_bits(4),
            (0..9).map(|i| store.tuple(i).storage_bits(4)).sum::<u64>()
        );
    }

    #[test]
    fn update_on_isolated_spin_writes_nothing() {
        let g = GraphBuilder::new(2).build().unwrap();
        let s = SpinVector::filled(2, Spin::Up);
        let mut store = TupleStore::new(&g, &s);
        assert_eq!(store.update_spin(0, Spin::Down), 0);
        assert_eq!(store.spin_copy_updates(), 0);
    }
}
