//! Tuple mapping and the tuple-rep property (Sec. IV.B, Fig. 7).
//!
//! SACHI abstracts the incoming graph into *tuples*: one row of the storage
//! array per spin, holding the neighboring spin states, the connecting ICs,
//! and the external field. Because the same IC appears in the tuple of both
//! endpoints — "tuple-rep" — every tuple's `H_σ` is computable without
//! touching any other tuple, which is what lets tiles work independently.
//!
//! The price of tuple-rep is paid on *update*: when spin `j` flips, its
//! copy inside every tuple that contains it must be refreshed. A dedicated
//! region of the storage array holds the adjacency matrix; the update path
//! reads it to find the relevant tuples (Fig. 8b). [`TupleStore`] is that
//! pair of structures, and its counters feed the machine's cycle/energy
//! accounting.

use crate::encoding::{EncodingError, MixedEncoding};
use sachi_ising::graph::IsingGraph;
use sachi_ising::spin::{Spin, SpinVector};

/// One spin's tuple: the storage-array row of Fig. 7a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpinTuple {
    /// The spin this tuple computes `H_σ` for.
    pub target: u32,
    /// Neighbor spin ids.
    pub neighbors: Vec<u32>,
    /// Connecting interaction coefficients, aligned with `neighbors`.
    pub couplings: Vec<i32>,
    /// *Copies* of the neighboring spin states (tuple-rep makes these
    /// local; they go stale unless the update path refreshes them).
    pub neighbor_spins: Vec<Spin>,
    /// External field `h_i`.
    pub field: i32,
}

impl SpinTuple {
    /// Local field `H_σ = -Σ J_ij σ_j - h_i` computed **entirely from the
    /// tuple's own copies** — the independence that tuple-rep buys.
    pub fn local_field(&self) -> i64 {
        let mut h = -(self.field as i64);
        for (j, s) in self.couplings.iter().zip(self.neighbor_spins.iter()) {
            h -= *j as i64 * s.value();
        }
        h
    }

    /// Number of neighbors (the paper's `N` for this tuple).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Storage bits of this tuple at resolution `r`: `N` neighbor-spin
    /// bits + `N` R-bit ICs + one R-bit field.
    pub fn storage_bits(&self, r: u32) -> u64 {
        self.degree() as u64 * (r as u64 + 1) + r as u64
    }
}

/// The storage array's logical content: all tuples plus the adjacency
/// index used by the update path.
#[derive(Debug, Clone)]
pub struct TupleStore {
    tuples: Vec<SpinTuple>,
    /// For each spin `j`: the list of `(tuple_index, slot)` pairs holding a
    /// copy of `σ_j` — the adjacency-matrix region of Fig. 8b.
    adjacency: Vec<Vec<(u32, u32)>>,
    /// Whether tuple-rep is enabled. The ablation (`abl_tuple_rep`)
    /// disables it, which forces cross-tuple re-reads (counted, not
    /// simulated structurally).
    tuple_rep: bool,
    spin_copy_updates: u64,
    adjacency_reads: u64,
    cross_tuple_rereads: u64,
}

impl TupleStore {
    /// Builds the store from a graph and the initial spins, with tuple-rep
    /// enabled (the paper's design).
    ///
    /// # Panics
    ///
    /// Panics if `spins.len() != graph.num_spins()`.
    pub fn new(graph: &IsingGraph, spins: &SpinVector) -> Self {
        Self::with_tuple_rep(graph, spins, true)
    }

    /// Builds the store with explicit tuple-rep setting.
    ///
    /// # Panics
    ///
    /// Panics if `spins.len() != graph.num_spins()`.
    pub fn with_tuple_rep(graph: &IsingGraph, spins: &SpinVector, tuple_rep: bool) -> Self {
        assert_eq!(
            spins.len(),
            graph.num_spins(),
            "spin vector must match graph size"
        );
        let n = graph.num_spins();
        let mut tuples = Vec::with_capacity(n);
        let mut adjacency: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for i in 0..n {
            let mut neighbors = Vec::with_capacity(graph.degree(i));
            let mut couplings = Vec::with_capacity(graph.degree(i));
            let mut neighbor_spins = Vec::with_capacity(graph.degree(i));
            for (slot, (j, w)) in graph.neighbors(i).enumerate() {
                neighbors.push(j);
                couplings.push(w);
                neighbor_spins.push(spins.get(j as usize));
                adjacency[j as usize].push((i as u32, slot as u32));
            }
            tuples.push(SpinTuple {
                target: i as u32,
                neighbors,
                couplings,
                neighbor_spins,
                field: graph.field(i),
            });
        }
        // Tuple-rep invariant: every adjacency entry for spin j must name
        // a (tuple, slot) that actually stores a copy of σ_j, and there is
        // exactly one copy per adjacent tuple.
        debug_assert!(
            adjacency.iter().enumerate().all(|(j, entries)| {
                entries.len() == graph.degree(j)
                    && entries
                        .iter()
                        .all(|&(t, slot)| tuples[t as usize].neighbors[slot as usize] as usize == j)
            }),
            "tuple-rep construction broke the adjacency/copy correspondence"
        );
        TupleStore {
            tuples,
            adjacency,
            tuple_rep,
            spin_copy_updates: 0,
            adjacency_reads: 0,
            cross_tuple_rereads: 0,
        }
    }

    /// Number of tuples (== spins).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the store holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether tuple-rep is enabled.
    pub fn tuple_rep(&self) -> bool {
        self.tuple_rep
    }

    /// The tuple of spin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tuple(&self, i: usize) -> &SpinTuple {
        &self.tuples[i]
    }

    /// Iterates all tuples in spin order.
    pub fn iter(&self) -> std::slice::Iter<'_, SpinTuple> {
        self.tuples.iter()
    }

    /// Computes the local field of spin `i`, counting the cross-tuple
    /// re-reads that would be needed *without* tuple-rep (one per neighbor
    /// whose shared IC would live only in the neighbor's tuple — on
    /// average half of them under the paper's single-copy alternative;
    /// we count the worst-case "J stored with the lower-indexed endpoint"
    /// convention: a re-read for every neighbor with a smaller index).
    pub fn local_field(&mut self, i: usize) -> i64 {
        if !self.tuple_rep {
            let t = &self.tuples[i];
            let rereads = t.neighbors.iter().filter(|&&j| (j as usize) < i).count() as u64;
            self.cross_tuple_rereads += rereads;
        }
        self.tuples[i].local_field()
    }

    /// The adjacency entries of spin `j`: every `(tuple_index, slot)` pair
    /// holding a copy of `σ_j`. This is the read the Fig. 8b update path
    /// performs; exposing it lets mirrored stores ([`TuplePlanes`]) follow
    /// the same walk without duplicating the index.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn adjacency_of(&self, j: usize) -> &[(u32, u32)] {
        &self.adjacency[j]
    }

    /// Applies a spin update through the Fig. 8b path: reads the adjacency
    /// matrix, then refreshes `σ_j`'s copy in every relevant tuple.
    /// Returns the number of tuple entries written.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn update_spin(&mut self, j: usize, new: Spin) -> u64 {
        self.adjacency_reads += 1;
        let entries = std::mem::take(&mut self.adjacency[j]);
        let count = entries.len() as u64;
        for &(t, slot) in &entries {
            debug_assert_eq!(
                self.tuples[t as usize].neighbors[slot as usize] as usize,
                j,
                "tuple-rep adjacency corrupt: entry for spin {j} points at tuple {t} slot {slot}, which holds a different neighbor"
            );
            self.tuples[t as usize].neighbor_spins[slot as usize] = new;
        }
        self.adjacency[j] = entries;
        self.spin_copy_updates += count;
        count
    }

    /// Total spin-copy writes so far (storage-array write traffic of the
    /// update path).
    pub fn spin_copy_updates(&self) -> u64 {
        self.spin_copy_updates
    }

    /// Adjacency-matrix reads so far.
    pub fn adjacency_reads(&self) -> u64 {
        self.adjacency_reads
    }

    /// Cross-tuple re-reads that the no-tuple-rep ablation would incur.
    pub fn cross_tuple_rereads(&self) -> u64 {
        self.cross_tuple_rereads
    }

    /// Total storage bits of all tuples at resolution `r`.
    pub fn total_storage_bits(&self, r: u32) -> u64 {
        self.tuples.iter().map(|t| t.storage_bits(r)).sum()
    }

    /// Bits of the adjacency-matrix region: one bit per (spin, tuple)
    /// membership.
    pub fn adjacency_bits(&self) -> u64 {
        self.adjacency.iter().map(|v| v.len() as u64).sum()
    }
}

/// Per-tuple offsets into the [`TuplePlanes`] arenas.
#[derive(Debug, Clone, Copy)]
struct PlaneSlot {
    /// Word offset into `coupling_planes` (the tuple owns `r * words`
    /// words starting here, `words = plane_words(degree)`).
    planes: usize,
    /// Word offset into `coupling_words` / `group_words` (the tuple owns
    /// `degree` words starting here).
    words: usize,
    /// Word offset into `spin_words` (the tuple owns
    /// `plane_words(degree)` words starting here).
    spins: usize,
    /// Neighbor count of the tuple.
    degree: usize,
}

/// Structure-of-arrays mirror of a [`TupleStore`]: every encoding the four
/// design kernels consume, pre-computed once and stored as contiguous u64
/// word arenas.
///
/// The AoS tuples keep one `Vec<i32>`/`Vec<Spin>` pair per tuple, so every
/// fast-path compute re-runs `MixedEncoding` encode over the couplings and
/// re-packs the spin bits — a per-tuple gather that BENCH_perf.json shows
/// dominating the sweep once the XNOR kernels are fast. The SoA mirror
/// hoists all of that out of the sweep loop:
///
/// * `coupling_planes` — bit-transposed coupling planes (`r` planes of
///   `plane_words(N)` words per tuple): the n1a/n1b drive operand,
///   consumed plane-at-a-time by `compute_xnor_plane`.
/// * `coupling_words` — one sign-magnitude-encoded word per coupling: the
///   n2 row image, uploaded whole with `write_rows_from_words`.
/// * `group_words` — `encode(J) | σ_j << r` per coupling: the n3 packed
///   group image, maintained under spin updates.
/// * `spin_words` — the packed neighbor-spin row (`plane_words(N)` words
///   per tuple): the spin-stationary upload operand and the n2 drive row.
///
/// Couplings and fields are stationary for a whole solve, so only the
/// spin-dependent arenas (`spin_words`, `group_words`) ever change after
/// construction; [`TuplePlanes::writeback_spin`] applies a spin flip by
/// walking the same adjacency entries as [`TupleStore::update_spin`].
#[derive(Debug, Clone)]
pub struct TuplePlanes {
    bits: u32,
    slots: Vec<PlaneSlot>,
    coupling_planes: Vec<u64>,
    coupling_words: Vec<u64>,
    group_words: Vec<u64>,
    spin_words: Vec<u64>,
}

/// Borrowed view of one tuple's SoA data — what a design kernel receives.
#[derive(Debug, Clone, Copy)]
pub struct TuplePlaneView<'a> {
    /// `r` bit-planes of `plane_words(degree)` words each.
    pub coupling_planes: &'a [u64],
    /// One encoded word per coupling (`degree` words).
    pub coupling_words: &'a [u64],
    /// One `encode(J) | σ_j << r` group word per coupling (`degree` words).
    pub group_words: &'a [u64],
    /// Packed neighbor-spin bits (`plane_words(degree)` words).
    pub spin_words: &'a [u64],
}

impl TuplePlanes {
    /// Builds the SoA mirror of `store` at the encoding's resolution.
    ///
    /// # Errors
    ///
    /// Returns an error if any coupling is out of range for `enc`.
    pub fn new(store: &TupleStore, enc: &MixedEncoding) -> Result<Self, EncodingError> {
        Self::from_tuples(store.iter(), enc)
    }

    /// Builds the mirror from an explicit tuple sequence (tests and
    /// single-tuple differential harnesses).
    ///
    /// # Errors
    ///
    /// Returns an error if any coupling is out of range for `enc`.
    pub fn from_tuples<'a, I>(tuples: I, enc: &MixedEncoding) -> Result<Self, EncodingError>
    where
        I: IntoIterator<Item = &'a SpinTuple>,
    {
        let r = enc.bits() as usize;
        let mut planes = Self {
            bits: enc.bits(),
            slots: Vec::new(),
            coupling_planes: Vec::new(),
            coupling_words: Vec::new(),
            group_words: Vec::new(),
            spin_words: Vec::new(),
        };
        for tuple in tuples {
            let n = tuple.degree();
            let words = MixedEncoding::plane_words(n);
            let slot = PlaneSlot {
                planes: planes.coupling_planes.len(),
                words: planes.coupling_words.len(),
                spins: planes.spin_words.len(),
                degree: n,
            };
            planes.coupling_planes.resize(slot.planes + r * words, 0);
            enc.encode_into(&tuple.couplings, &mut planes.coupling_planes[slot.planes..])?;
            planes.spin_words.resize(slot.spins + words, 0);
            for (k, (&j, &s)) in tuple
                .couplings
                .iter()
                .zip(tuple.neighbor_spins.iter())
                .enumerate()
            {
                let word = enc.encode_word(i64::from(j))?;
                planes.coupling_words.push(word);
                planes
                    .group_words
                    .push(word | (s.bit() as u64) << enc.bits());
                if s.bit() {
                    planes.spin_words[slot.spins + k / 64] |= 1u64 << (k % 64);
                }
            }
            planes.slots.push(slot);
        }
        Ok(planes)
    }

    /// Encoding resolution the mirror was built at.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of mirrored tuples.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no tuples are mirrored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The SoA view of tuple `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn view(&self, i: usize) -> TuplePlaneView<'_> {
        let slot = self.slots[i];
        let r = self.bits as usize;
        let words = MixedEncoding::plane_words(slot.degree);
        TuplePlaneView {
            coupling_planes: &self.coupling_planes[slot.planes..slot.planes + r * words],
            coupling_words: &self.coupling_words[slot.words..slot.words + slot.degree],
            group_words: &self.group_words[slot.words..slot.words + slot.degree],
            spin_words: &self.spin_words[slot.spins..slot.spins + words],
        }
    }

    /// Mirrors a spin flip: refreshes `σ_j`'s bit in the spin row and group
    /// word of every tuple that holds a copy, walking the same adjacency
    /// entries as [`TupleStore::update_spin`]. Call with the *store that
    /// built this mirror* (before or after its own update — the adjacency
    /// index is immutable).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for `store`, or if `store` does not
    /// match the tuples this mirror was built from.
    pub fn writeback_spin(&mut self, store: &TupleStore, j: usize, new: Spin) {
        for &(t, slot) in store.adjacency_of(j) {
            let ps = self.slots[t as usize];
            let (k, bit) = (slot as usize / 64, slot as usize % 64);
            assert!(
                (slot as usize) < ps.degree,
                "adjacency slot out of range for mirrored tuple {t}"
            );
            if new.bit() {
                self.spin_words[ps.spins + k] |= 1u64 << bit;
                self.group_words[ps.words + slot as usize] |= 1u64 << self.bits;
            } else {
                self.spin_words[ps.spins + k] &= !(1u64 << bit);
                self.group_words[ps.words + slot as usize] &= !(1u64 << self.bits);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::hamiltonian::local_field;

    fn sample() -> (IsingGraph, SpinVector) {
        let g = GraphBuilder::new(4)
            .edge(0, 1, 3)
            .edge(1, 2, -2)
            .edge(2, 3, 5)
            .edge(0, 3, 1)
            .field(1, 4)
            .build()
            .unwrap();
        let s = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up, Spin::Down]);
        (g, s)
    }

    #[test]
    fn tuples_mirror_graph_structure() {
        let (g, s) = sample();
        let store = TupleStore::new(&g, &s);
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        let t1 = store.tuple(1);
        assert_eq!(t1.target, 1);
        assert_eq!(t1.degree(), 2);
        assert_eq!(t1.neighbors, vec![0, 2]);
        assert_eq!(t1.couplings, vec![3, -2]);
        assert_eq!(t1.neighbor_spins, vec![Spin::Up, Spin::Up]);
        assert_eq!(t1.field, 4);
    }

    #[test]
    fn tuple_rep_duplicates_shared_ics() {
        // J_12 must appear in both tuple 1 and tuple 2 (Fig. 7b).
        let (g, s) = sample();
        let store = TupleStore::new(&g, &s);
        assert!(store.tuple(1).couplings.contains(&-2));
        assert!(store.tuple(2).couplings.contains(&-2));
        assert!(store.tuple_rep());
    }

    #[test]
    fn tuple_local_field_matches_golden() {
        let (g, s) = sample();
        let mut store = TupleStore::new(&g, &s);
        for i in 0..4 {
            assert_eq!(store.local_field(i), local_field(&g, &s, i), "spin {i}");
        }
        assert_eq!(store.cross_tuple_rereads(), 0);
    }

    #[test]
    fn update_refreshes_all_copies() {
        let (g, s) = sample();
        let mut store = TupleStore::new(&g, &s);
        // Spin 0 appears in tuples 1 and 3.
        let written = store.update_spin(0, Spin::Down);
        assert_eq!(written, 2);
        assert_eq!(store.tuple(1).neighbor_spins[0], Spin::Down);
        // Tuple 3's adjacency is canonicalized to [0, 2]: spin 0 is slot 0.
        assert_eq!(store.tuple(3).neighbor_spins[0], Spin::Down);
        assert_eq!(store.spin_copy_updates(), 2);
        assert_eq!(store.adjacency_reads(), 1);
        // Fields match a freshly built store on the updated spins.
        let mut s2 = s.clone();
        s2.set(0, Spin::Down);
        let fresh = TupleStore::new(&g, &s2);
        for i in 0..4 {
            assert_eq!(store.tuple(i).local_field(), fresh.tuple(i).local_field());
        }
    }

    #[test]
    fn no_tuple_rep_counts_rereads() {
        let (g, s) = sample();
        let mut store = TupleStore::with_tuple_rep(&g, &s, false);
        assert!(!store.tuple_rep());
        for i in 0..4 {
            store.local_field(i);
        }
        // Each of the 4 edges triggers exactly one re-read (at its
        // higher-indexed endpoint).
        assert_eq!(store.cross_tuple_rereads(), 4);
    }

    #[test]
    fn storage_footprint_formulas() {
        let g = topology::king(3, 3, |_, _| 1).unwrap();
        let s = SpinVector::filled(9, Spin::Up);
        let store = TupleStore::new(&g, &s);
        // Center tuple: 8 neighbors, R=4 -> 8*5 + 4 = 44 bits.
        assert_eq!(store.tuple(4).storage_bits(4), 44);
        // Adjacency bits = directed edge count = 2 * edges.
        assert_eq!(store.adjacency_bits(), 2 * g.num_edges() as u64);
        assert_eq!(
            store.total_storage_bits(4),
            (0..9).map(|i| store.tuple(i).storage_bits(4)).sum::<u64>()
        );
    }

    #[test]
    fn update_on_isolated_spin_writes_nothing() {
        let g = GraphBuilder::new(2).build().unwrap();
        let s = SpinVector::filled(2, Spin::Up);
        let mut store = TupleStore::new(&g, &s);
        assert_eq!(store.update_spin(0, Spin::Down), 0);
        assert_eq!(store.spin_copy_updates(), 0);
    }

    fn assert_planes_mirror_store(planes: &TuplePlanes, store: &TupleStore, enc: &MixedEncoding) {
        assert_eq!(planes.len(), store.len());
        for (i, tuple) in store.iter().enumerate() {
            let v = planes.view(i);
            let n = tuple.degree();
            let w = MixedEncoding::plane_words(n);
            assert_eq!(v.coupling_planes.len(), enc.bits() as usize * w);
            assert_eq!(v.coupling_words.len(), n);
            assert_eq!(v.group_words.len(), n);
            assert_eq!(v.spin_words.len(), w);
            for (k, (&j, &s)) in tuple
                .couplings
                .iter()
                .zip(tuple.neighbor_spins.iter())
                .enumerate()
            {
                assert_eq!(enc.decode_plane(v.coupling_planes, w, k), i64::from(j));
                assert_eq!(enc.decode_word(v.coupling_words[k]), i64::from(j));
                assert_eq!(
                    v.group_words[k],
                    v.coupling_words[k] | (s.bit() as u64) << enc.bits()
                );
                assert_eq!((v.spin_words[k / 64] >> (k % 64)) & 1 == 1, s.bit());
            }
            // Padding bits beyond the degree stay zero (the popcount-based
            // Down-spin count depends on this).
            for k in n..w * 64 {
                assert_eq!((v.spin_words[k / 64] >> (k % 64)) & 1, 0, "lane {k}");
            }
        }
    }

    #[test]
    fn soa_mirror_matches_aos_store() {
        let (g, s) = sample();
        let store = TupleStore::new(&g, &s);
        let enc = MixedEncoding::new(4).unwrap();
        let planes = TuplePlanes::new(&store, &enc).unwrap();
        assert_eq!(planes.bits(), 4);
        assert!(!planes.is_empty());
        assert_planes_mirror_store(&planes, &store, &enc);
    }

    #[test]
    fn soa_writeback_tracks_spin_updates() {
        // King graph: degree 8 exercises multi-neighbor rows; then a wide
        // complete-ish update sequence to cross word boundaries elsewhere.
        let g = topology::king(4, 4, |a, b| ((a + 2 * b) % 7) as i32 - 3).unwrap();
        let mut s = SpinVector::filled(16, Spin::Up);
        let mut store = TupleStore::new(&g, &s);
        let enc = MixedEncoding::new(4).unwrap();
        let mut planes = TuplePlanes::new(&store, &enc).unwrap();
        for (j, flip) in [
            (5usize, Spin::Down),
            (0, Spin::Down),
            (5, Spin::Up),
            (10, Spin::Down),
        ] {
            s.set(j, flip);
            store.update_spin(j, flip);
            planes.writeback_spin(&store, j, flip);
            assert_planes_mirror_store(&planes, &store, &enc);
            // The incremental mirror equals a from-scratch rebuild.
            let fresh = TuplePlanes::new(&store, &enc).unwrap();
            for i in 0..store.len() {
                assert_eq!(planes.view(i).spin_words, fresh.view(i).spin_words);
                assert_eq!(planes.view(i).group_words, fresh.view(i).group_words);
            }
        }
    }

    #[test]
    fn soa_mirror_spans_word_boundaries() {
        // A 100-neighbor tuple needs two spin words; every encoding arena
        // must stay aligned across the boundary.
        let n = 100u32;
        let tuple = SpinTuple {
            target: 0,
            neighbors: (1..=n).collect(),
            couplings: (0..n as i32).map(|k| (k % 15) - 7).collect(),
            neighbor_spins: (0..n)
                .map(|k| if k % 3 == 0 { Spin::Down } else { Spin::Up })
                .collect(),
            field: 2,
        };
        let enc = MixedEncoding::new(4).unwrap();
        let planes = TuplePlanes::from_tuples([&tuple], &enc).unwrap();
        let v = planes.view(0);
        assert_eq!(v.spin_words.len(), 2);
        let w = MixedEncoding::plane_words(n as usize);
        for k in 0..n as usize {
            assert_eq!(
                enc.decode_plane(v.coupling_planes, w, k),
                i64::from(tuple.couplings[k])
            );
            assert_eq!(
                (v.spin_words[k / 64] >> (k % 64)) & 1 == 1,
                tuple.neighbor_spins[k].bit()
            );
        }
    }

    #[test]
    fn soa_rejects_out_of_range_couplings() {
        let tuple = SpinTuple {
            target: 0,
            neighbors: vec![1],
            couplings: vec![1000],
            neighbor_spins: vec![Spin::Up],
            field: 0,
        };
        let enc = MixedEncoding::new(4).unwrap();
        assert!(TuplePlanes::from_tuples([&tuple], &enc).is_err());
    }
}
