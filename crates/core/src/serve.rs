//! The session layer behind the `sachi serve` daemon: validated job
//! specs, admission limits, deterministic job plans, and a shared
//! multi-tenant worker pool that packs replica ensembles from
//! *different* jobs onto one set of threads.
//!
//! # Determinism contract
//!
//! A [`JobPlan`] freezes everything a solve depends on — graph, initial
//! spins, [`SolveOptions`], machine config — as a pure function of the
//! [`JobSpec`]. Replica `k` then runs with
//! [`EnsembleRunner::replica_options`], so its result is a pure
//! function of `(spec, k)` alone: no thread identity, queue position,
//! or co-tenant job can reach it. The pool writes each result into the
//! slot named by its replica index and reduces with the same
//! [`BestOf::reduce`] / [`EnsembleReport::fold`] the in-process runner
//! uses, which makes a pooled job byte-identical to [`JobPlan::run_solo`]
//! at any thread count and under any co-tenancy — the property
//! `tests/ensemble_determinism.rs` proptests under mixed-workload
//! batching.
//!
//! # Isolation
//!
//! Workers run each replica under [`std::panic::catch_unwind`]: a
//! poison job (one whose plan panics a machine) marks only itself
//! failed — its waiter receives a typed [`SachiError::Solve`] — and the
//! worker thread survives to run the next queued replica. Cancelled
//! jobs ([`JobHandle::cancel`], via the [`CancelToken`] installed in
//! every plan) stop at the next sweep boundary; their partial results
//! are timing-dependent, so hosts that promise determinism must
//! discard them rather than report them.

use crate::config::{DesignKind, FaultProfile, SachiConfig};
use crate::ensemble::{EnsembleReport, ReplicaLedger, ReportingMachine};
use crate::error::{SachiError, ServerReason};
use crate::machine::{RunReport, SachiMachine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi_ising::prelude::{
    BestOf, CancelToken, EnsembleRunner, IsingGraph, LadderKind, RecoveryPolicy, SolveOptions,
    SolveResult, SpinVector, TemperingOptions,
};
use sachi_mem::fault::{FaultModel, FaultRate};
use sachi_obs::registry::MetricsRegistry;
use sachi_workloads::prelude::{
    AssetAllocation, ColoringInstance, ColoringWorkload, Connectivity, CopKind, ImageSegmentation,
    MolecularDynamics, SatInstance, SatWorkload, SchedulingInstance, SchedulingWorkload,
    TspDecision, Workload,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Salt XORed into the master seed to derive the initial-spin stream,
/// keeping it independent of the annealer stream (which uses
/// `seed + 1`). Shared by the one-shot CLI and the daemon so the same
/// spec and seed produce the same initial state on both paths.
pub const INIT_SEED_SALT: u64 = 0x0051_ac41;

/// A domain-accuracy scorer for a final spin state (1.0 = optimal).
pub type AccuracyFn = Box<dyn Fn(&SpinVector) -> f64 + Send + Sync>;

/// A generated COP instance: encoded graph plus its accuracy scorer.
pub struct CopProblem {
    /// Workload display name.
    pub name: String,
    /// Encoded Ising graph.
    pub graph: IsingGraph,
    /// Domain-accuracy scorer for a final spin state.
    pub accuracy: AccuracyFn,
}

/// Rounds `size` to a near-square `(rows, cols)` grid for lattice COPs.
pub fn near_square(size: usize) -> (usize, usize) {
    let side = (size as f64).sqrt().round().max(1.0) as usize;
    (side, size.div_ceil(side))
}

/// Builds the generated COP family `kind` at `size` spins with `seed` —
/// the single construction shared by `sachi solve --cop` and the
/// daemon, so a job spec means the same instance on both paths.
///
/// # Errors
///
/// [`SachiError::Config`] when the instance cannot be encoded
/// (coefficient overflow in the penalty terms).
pub fn build_cop_problem(kind: CopKind, size: usize, seed: u64) -> Result<CopProblem, SachiError> {
    fn pack<W: Workload + Send + Sync + 'static>(w: W) -> CopProblem {
        let name = w.name();
        let graph = w.graph().clone();
        CopProblem {
            name,
            graph,
            accuracy: Box::new(move |s| w.accuracy(s)),
        }
    }
    Ok(match kind {
        CopKind::AssetAllocation => pack(AssetAllocation::new(size.max(2), seed)),
        CopKind::ImageSegmentation => {
            let (rows, cols) = near_square(size.max(4));
            pack(ImageSegmentation::with_options(
                cols,
                rows,
                seed,
                Connectivity::Grid4,
                6,
            ))
        }
        CopKind::TravelingSalesman => pack(TspDecision::new(size.max(3), seed)),
        CopKind::MolecularDynamics => {
            let (rows, cols) = near_square(size.max(2));
            pack(MolecularDynamics::new(rows, cols, seed))
        }
        CopKind::SatThree => {
            // Critical clause ratio m/n ~= 4.3 (the hard regime).
            let n = size.max(5);
            let m = n.saturating_mul(43) / 10;
            let instance = SatInstance::random(n, m, seed);
            pack(
                SatWorkload::new("generated", instance)
                    .map_err(|e| SachiError::Config(e.to_string()))?,
            )
        }
        CopKind::GraphColoring => {
            let n = size.max(4);
            let (instance, _) = ColoringInstance::planted(n, 3, 3_000, seed);
            pack(
                ColoringWorkload::new("generated", instance)
                    .map_err(|e| SachiError::Config(e.to_string()))?,
            )
        }
        CopKind::JobScheduling => {
            let jobs = size.max(4);
            let instance = SchedulingInstance::random(jobs, 3, 9, seed);
            pack(
                SchedulingWorkload::new("generated", instance)
                    .map_err(|e| SachiError::Config(e.to_string()))?,
            )
        }
    })
}

/// Everything a solve depends on, as submitted over the wire. The
/// daemon and the one-shot CLI both lower a spec through
/// [`JobPlan::from_spec`], so equality of specs implies byte-identical
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Generated COP family.
    pub cop: CopKind,
    /// Problem size (spins; lattice COPs round to a near-square grid).
    pub size: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Stationarity design.
    pub design: DesignKind,
    /// Replica-ensemble restarts.
    pub restarts: u64,
    /// IC resolution override.
    pub resolution: Option<u32>,
    /// Deterministic work-domain deadline (per-spin update steps).
    pub step_budget: Option<u64>,
    /// Transient read bit-error rate (None = perfect memory).
    pub fault_ber: Option<f64>,
    /// Seed of the fault stream.
    pub fault_seed: u64,
    /// Recovery policy applied when parity detects a fault.
    pub fault_policy: RecoveryPolicy,
    /// Run the replicas as coupled parallel-tempering rungs instead of
    /// independent restarts.
    pub tempering: bool,
    /// Temperature-ladder construction used when `tempering` is set.
    pub ladder: LadderKind,
}

impl Default for JobSpec {
    /// Matches the `sachi solve` flag defaults.
    fn default() -> Self {
        JobSpec {
            cop: CopKind::MolecularDynamics,
            size: 256,
            seed: 0,
            design: DesignKind::N3,
            restarts: 1,
            resolution: None,
            step_budget: None,
            fault_ber: None,
            fault_seed: 0,
            fault_policy: RecoveryPolicy::default(),
            tempering: false,
            ladder: LadderKind::Geometric,
        }
    }
}

impl JobSpec {
    /// Intrinsic validity: things that can never work regardless of the
    /// server's limits. Zero sizes/restarts and a zero step budget are
    /// rejected here (a budget of 0 would otherwise be clamped to one
    /// sweep and silently run, hiding the caller's bug).
    ///
    /// # Errors
    ///
    /// [`SachiError::Usage`] or [`SachiError::Config`] naming the field.
    pub fn validate(&self) -> Result<(), SachiError> {
        if self.size == 0 {
            return Err(SachiError::Usage("size must be at least 1".to_string()));
        }
        if self.restarts == 0 {
            return Err(SachiError::Usage("restarts must be at least 1".to_string()));
        }
        if self.step_budget == Some(0) {
            return Err(SachiError::Usage(
                "step_budget must be at least 1 (a zero budget would run no useful work; omit \
                 the field for an unbudgeted run)"
                    .to_string(),
            ));
        }
        if let Some(r) = self.resolution {
            if r == 0 || r > 64 {
                return Err(SachiError::Config(format!(
                    "resolution {r} is outside the representable 1..=64 bit range"
                )));
            }
        }
        if let Some(ber) = self.fault_ber {
            if !(0.0..=1.0).contains(&ber) {
                return Err(SachiError::Usage(format!(
                    "fault_ber {ber} is not a probability in [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Full admission check: intrinsic validity plus the server's
    /// [`JobLimits`]. Limit breaches are the *server's* refusal, not a
    /// defect in the job, so they map to [`SachiError::Server`] with
    /// [`ServerReason::OverLimit`] (protocol code 5, distinct from the
    /// usage code 2).
    ///
    /// # Errors
    ///
    /// See [`JobSpec::validate`]; additionally [`SachiError::Server`]
    /// on limit breaches.
    pub fn admit(&self, limits: &JobLimits) -> Result<(), SachiError> {
        self.validate()?;
        if self.size > limits.max_size {
            return Err(SachiError::server(
                ServerReason::OverLimit,
                format!(
                    "size {} exceeds this server's max {}",
                    self.size, limits.max_size
                ),
            ));
        }
        if self.restarts > limits.max_restarts {
            return Err(SachiError::server(
                ServerReason::OverLimit,
                format!(
                    "restarts {} exceeds this server's max {}",
                    self.restarts, limits.max_restarts
                ),
            ));
        }
        if let Some(budget) = self.step_budget {
            if budget > limits.max_step_budget {
                return Err(SachiError::server(
                    ServerReason::OverLimit,
                    format!(
                        "step_budget {budget} exceeds this server's max {}",
                        limits.max_step_budget
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Server-side admission caps. Jobs beyond these are rejected with
/// [`ServerReason::OverLimit`] before any memory is committed — the
/// bounded-queue half of the backpressure story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLimits {
    /// Largest accepted problem size.
    pub max_size: usize,
    /// Largest accepted replica count per job.
    pub max_restarts: u64,
    /// Largest accepted step budget.
    pub max_step_budget: u64,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_size: 65_536,
            max_restarts: 256,
            max_step_budget: 100_000_000,
        }
    }
}

/// A frozen, validated, ready-to-run job: the pure-function lowering of
/// a [`JobSpec`]. Building the plan does all fallible work up front;
/// running a replica afterwards is infallible (panics are the poison
/// case the pool isolates).
pub struct JobPlan {
    spec: JobSpec,
    name: String,
    graph: IsingGraph,
    accuracy: AccuracyFn,
    init: SpinVector,
    options: SolveOptions,
    config: SachiConfig,
    replicas: usize,
}

impl std::fmt::Debug for JobPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPlan")
            .field("spec", &self.spec)
            .field("name", &self.name)
            .field("spins", &self.graph.num_spins())
            .field("replicas", &self.replicas)
            .finish_non_exhaustive()
    }
}

impl JobPlan {
    /// Lowers a spec: validate, build the COP, check the resolution
    /// against the graph's coefficient range, derive the initial spins
    /// (`seed ^ INIT_SEED_SALT`) and annealer seed (`seed + 1`), and
    /// freeze the machine config. Mirrors `sachi solve` exactly.
    ///
    /// # Errors
    ///
    /// [`SachiError::Usage`] / [`SachiError::Config`] from
    /// [`JobSpec::validate`], COP encoding, or a resolution that cannot
    /// represent the graph's coefficients.
    pub fn from_spec(spec: &JobSpec) -> Result<JobPlan, SachiError> {
        spec.validate()?;
        let problem = build_cop_problem(spec.cop, spec.size, spec.seed)?;
        if let Some(r) = spec.resolution {
            let required = problem.graph.bits_required();
            if r < required {
                return Err(SachiError::Config(format!(
                    "resolution {r} cannot represent this problem's coefficients (needs \
                     {required}-bit); drop the field or pass >= {required}"
                )));
            }
        }
        let mut rng = StdRng::seed_from_u64(spec.seed ^ INIT_SEED_SALT);
        let init = SpinVector::random(problem.graph.num_spins(), &mut rng);
        let mut options = SolveOptions::for_graph(&problem.graph, spec.seed.wrapping_add(1))
            .with_cancel(CancelToken::new());
        if let Some(budget) = spec.step_budget {
            options = options.with_step_budget(budget);
        }
        if spec.tempering {
            let rungs = usize::try_from(spec.restarts).unwrap_or(usize::MAX);
            options = options.with_tempering(TemperingOptions::for_graph(
                spec.ladder,
                &problem.graph,
                rungs,
            ));
        }
        let mut config = SachiConfig::new(spec.design);
        if let Some(r) = spec.resolution {
            config = config.with_resolution(r);
        }
        if let Some(ber) = spec.fault_ber {
            let model =
                FaultModel::new(spec.fault_seed).with_read_ber(FaultRate::from_probability(ber));
            config = config.with_fault(FaultProfile::new(model).with_policy(spec.fault_policy));
        }
        let replicas = usize::try_from(spec.restarts)
            .map_err(|_| SachiError::Usage("restarts too large for this host".to_string()))?;
        Ok(JobPlan {
            spec: spec.clone(),
            name: problem.name,
            graph: problem.graph,
            accuracy: problem.accuracy,
            init,
            options,
            config,
            replicas,
        })
    }

    /// The spec this plan was lowered from.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Workload display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoded graph.
    pub fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    /// Replica-ensemble width.
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// The job-level cancellation token shared by every replica.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.options.cancel.clone()
    }

    /// True when this plan runs its replicas as *coupled*
    /// parallel-tempering rungs. Coupled plans exchange state at round
    /// boundaries, so they cannot be decomposed into independent
    /// per-replica tasks — the pool runs them as one unit of work.
    pub fn is_coupled(&self) -> bool {
        self.options.tempering.as_ref().is_some_and(|t| t.exchange)
    }

    /// Runs replica `k` on a fresh machine. Pure in `(plan, k)`: the
    /// same call returns the same bytes on any thread, in any host, at
    /// any co-tenancy — the multi-tenant determinism contract rests on
    /// this function. Only meaningful for uncoupled plans (the
    /// tempering engine owns replica scheduling for coupled ones).
    pub fn run_replica(&self, k: usize) -> (SolveResult, RunReport) {
        let options = EnsembleRunner::replica_options(&self.options, k);
        let mut machine = SachiMachine::new(self.config.clone());
        machine.solve_detailed(&self.graph, &self.init, &options)
    }

    /// Runs the whole job as one coupled tempering run (single worker
    /// thread — the run is deterministic at any thread count, and a
    /// pooled coupled job occupies exactly one pool worker). Pure in
    /// the plan alone.
    fn run_coupled(&self) -> JobOutcome {
        let ledger = ReplicaLedger::new(self.replicas);
        let best = EnsembleRunner::new(self.replicas).with_threads(1).run(
            &self.graph,
            &self.init,
            &self.options,
            |k| ReportingMachine::new(SachiMachine::new(self.config.clone()), k, &ledger),
        );
        let report = ledger.finish();
        let accuracy = (self.accuracy)(&best.best().spins);
        JobOutcome {
            best,
            report,
            accuracy,
        }
    }

    /// Runs every replica in-process, sequentially, and reduces — the
    /// reference the pooled path must match byte-for-byte. Coupled
    /// (tempering) plans route through the exchange engine; both the
    /// solo and pooled paths call the same engine, so their equality is
    /// by construction.
    pub fn run_solo(&self) -> JobOutcome {
        if self.is_coupled() {
            return self.run_coupled();
        }
        let mut pairs = Vec::with_capacity(self.replicas);
        for k in 0..self.replicas {
            pairs.push(self.run_replica(k));
        }
        reduce_outcome(self, pairs)
    }
}

/// Reduces per-replica `(result, report)` pairs, in replica order, to
/// the job outcome via the same folds the in-process runner uses.
fn reduce_outcome(plan: &JobPlan, pairs: Vec<(SolveResult, RunReport)>) -> JobOutcome {
    let mut results = Vec::with_capacity(pairs.len());
    let mut reports = Vec::with_capacity(pairs.len());
    for (result, report) in pairs {
        results.push(result);
        reports.push(report);
    }
    let best = BestOf::reduce(results);
    let report = EnsembleReport::fold(reports);
    let accuracy = (plan.accuracy)(&best.best().spins);
    JobOutcome {
        best,
        report,
        accuracy,
    }
}

/// The completed job: ensemble verdict, folded report, and the domain
/// accuracy of the winning spins.
#[derive(Debug)]
pub struct JobOutcome {
    /// Per-replica results and the ensemble verdict.
    pub best: BestOf,
    /// Folded per-replica reports (cycles, energy, fault aggregates).
    pub report: EnsembleReport,
    /// Domain accuracy of the best replica's spins (1.0 = optimal).
    pub accuracy: f64,
}

impl JobOutcome {
    /// The metrics snapshot `sachi solve --metrics` exports: the folded
    /// ensemble registry plus every replica's solver counters, in
    /// replica order (thread-count unobservable).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = self.report.metrics();
        for r in &self.best.replicas {
            r.export_metrics(&mut reg);
        }
        for (name, value) in self.best.stats.export_tempering_metrics() {
            reg.counter_add(name, value);
        }
        reg
    }

    /// The typed fault verdict `sachi solve` exits with, when fault
    /// injection was configured: fail-fast detection maps to
    /// [`SachiError::FaultDetected`], a fully-degraded ensemble to
    /// [`SachiError::FaultBudgetExhausted`]. `None` means the job
    /// solved despite (or without) faults.
    pub fn fault_error(&self, policy: RecoveryPolicy) -> Option<SachiError> {
        if policy == RecoveryPolicy::FailFast && self.report.degraded_replicas > 0 {
            return Some(SachiError::FaultDetected {
                detected: self.report.faults_detected,
            });
        }
        let replicas = u64::try_from(self.best.replicas.len()).unwrap_or(u64::MAX);
        if self.report.degraded_replicas >= replicas {
            return Some(SachiError::FaultBudgetExhausted {
                degraded: self.report.degraded_replicas,
                replicas,
            });
        }
        None
    }
}

/// One replica's worth of queued work.
struct Task {
    job: Arc<JobState>,
    replica: usize,
}

/// Shared per-job state: the plan, the result slots (indexed by
/// replica, never completion order), and the completion channel.
struct JobState {
    plan: JobPlan,
    slots: Mutex<Vec<Option<(SolveResult, RunReport)>>>,
    remaining: AtomicUsize,
    panicked: AtomicBool,
    started: AtomicBool,
    done: Mutex<Option<mpsc::Sender<JobResult>>>,
}

/// What a job's waiter receives.
pub type JobResult = Result<JobOutcome, SachiError>;

/// A submitted job's receipt: await it, cancel it, or let the server
/// revoke it on deadline expiry.
pub struct JobHandle {
    job: Arc<JobState>,
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Blocks until the job completes (or was revoked).
    pub fn wait(&self) -> JobResult {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(SachiError::Solve("worker pool disconnected".to_string())))
    }

    /// The completion channel, for deadline-bounded waits
    /// (`recv_timeout`) by hosts that own a clock.
    pub fn receiver(&self) -> &mpsc::Receiver<JobResult> {
        &self.rx
    }

    /// True once any replica of this job has been picked up by a
    /// worker (at which point [`SolverPool::revoke`] refuses).
    pub fn started(&self) -> bool {
        self.job.started.load(Ordering::Acquire)
    }

    /// Raises the job's [`CancelToken`]: running replicas stop at their
    /// next sweep boundary. The partial outcome still arrives on the
    /// channel; it is timing-dependent, so determinism-promising hosts
    /// must discard it.
    pub fn cancel(&self) {
        if let Some(token) = self.job.plan.cancel_token() {
            token.cancel();
        }
    }
}

/// Queue state guarded by the pool mutex.
struct PoolQueue {
    tasks: VecDeque<Task>,
    draining: bool,
}

struct PoolShared {
    state: Mutex<PoolQueue>,
    work: Condvar,
}

/// A fixed set of worker threads running replicas from *many* jobs —
/// the multi-tenant generalization of [`EnsembleRunner`]. Replicas
/// from different jobs interleave freely on the same workers; because
/// [`JobPlan::run_replica`] is pure in `(plan, k)`, the interleaving is
/// unobservable in any job's result.
pub struct SolverPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    threads: usize,
}

impl SolverPool {
    /// Spawns `threads` workers (0 = all available cores).
    ///
    /// (Deliberately not named `new`: the conservative name-based call
    /// graph in `xtask analyze` merges every `new` into one node, and
    /// this constructor's worker spawn would drag the whole solve path
    /// into every constructor's reachability set.)
    pub fn with_workers(threads: usize) -> SolverPool {
        let threads = if threads == 0 {
            EnsembleRunner::available_threads()
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                draining: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        SolverPool {
            shared,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues every replica of `plan` and returns the handle its
    /// waiter blocks on. Replicas from different jobs share one FIFO,
    /// so a wide job never starves a narrow one submitted after it by
    /// more than the in-flight replicas. Submitting to a draining pool
    /// resolves immediately with [`ServerReason::ShuttingDown`].
    pub fn submit(&self, plan: JobPlan) -> JobHandle {
        // A coupled (tempering) job is one indivisible unit of work:
        // its rungs exchange state between rounds, so it enqueues as a
        // single task and the worker sends the finished outcome itself
        // (no per-replica slots to fill).
        let tasks = if plan.is_coupled() {
            1
        } else {
            plan.replica_count()
        };
        let slots = if plan.is_coupled() {
            0
        } else {
            plan.replica_count()
        };
        let (tx, rx) = mpsc::channel();
        let job = Arc::new(JobState {
            plan,
            slots: Mutex::new((0..slots).map(|_| None).collect()),
            remaining: AtomicUsize::new(tasks),
            panicked: AtomicBool::new(false),
            started: AtomicBool::new(false),
            done: Mutex::new(Some(tx)),
        });
        let mut state = self.shared.state.lock().expect("pool mutex poisoned");
        if state.draining {
            drop(state);
            send_result(
                &job,
                Err(SachiError::server(
                    ServerReason::ShuttingDown,
                    "pool is draining; no new admissions",
                )),
            );
            return JobHandle { job, rx };
        }
        for replica in 0..tasks {
            state.tasks.push_back(Task {
                job: Arc::clone(&job),
                replica,
            });
        }
        drop(state);
        self.shared.work.notify_all();
        JobHandle { job, rx }
    }

    /// Withdraws a not-yet-started job (deadline expiry). Returns true
    /// — and resolves the handle with [`ServerReason::DeadlineExpired`]
    /// — only if no worker has picked up any replica; a started job
    /// cannot be revoked (its runtime is already bounded by the
    /// deterministic step budget) and the caller should keep waiting.
    pub fn revoke(&self, handle: &JobHandle) -> bool {
        let mut state = self.shared.state.lock().expect("pool mutex poisoned");
        if handle.job.started.load(Ordering::Acquire) {
            return false;
        }
        state
            .tasks
            .retain(|task| !Arc::ptr_eq(&task.job, &handle.job));
        drop(state);
        send_result(
            &handle.job,
            Err(SachiError::server(
                ServerReason::DeadlineExpired,
                "admission deadline expired before a worker started the job",
            )),
        );
        true
    }

    /// Graceful drain: stop accepting work, let the workers finish
    /// everything already queued, and join them. Idempotent.
    pub fn join(&self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.draining = true;
        }
        self.shared.work.notify_all();
        let workers = {
            let mut guard = self.workers.lock().expect("pool workers mutex poisoned");
            std::mem::take(&mut *guard)
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.join();
    }
}

/// Sends the job's result exactly once (the sender is taken).
fn send_result(job: &Arc<JobState>, result: JobResult) {
    let sender = job.done.lock().expect("job channel mutex poisoned").take();
    if let Some(tx) = sender {
        let _ = tx.send(result);
    }
}

/// Stores replica `k`'s output in its slot.
fn deposit(job: &Arc<JobState>, k: usize, pair: (SolveResult, RunReport)) {
    let mut slots = job.slots.lock().expect("job slots mutex poisoned");
    if let Some(slot) = slots.get_mut(k) {
        *slot = Some(pair);
    }
}

/// Completes a job whose last replica just finished: gather the slots
/// in replica order, reduce, send. A panicked replica poisons only this
/// job — the waiter gets a typed solve error, co-tenants are untouched.
fn complete_job(job: &Arc<JobState>) {
    // Coupled jobs send their outcome from the worker; the taken sender
    // marks them already resolved.
    if job
        .done
        .lock()
        .expect("job channel mutex poisoned")
        .is_none()
    {
        return;
    }
    if job.panicked.load(Ordering::Acquire) {
        send_result(
            job,
            Err(SachiError::Solve(
                "a replica panicked; the job was isolated and discarded (co-tenant jobs are \
                 unaffected)"
                    .to_string(),
            )),
        );
        return;
    }
    let mut pairs = Vec::with_capacity(job.plan.replica_count());
    {
        let mut slots = job.slots.lock().expect("job slots mutex poisoned");
        for slot in slots.iter_mut() {
            match slot.take() {
                Some(pair) => pairs.push(pair),
                None => {
                    drop(slots);
                    send_result(
                        job,
                        Err(SachiError::Solve(
                            "internal: a replica slot was never filled".to_string(),
                        )),
                    );
                    return;
                }
            }
        }
    }
    send_result(job, Ok(reduce_outcome(&job.plan, pairs)));
}

/// The worker thread body: pop a task (blocking on the condvar), run
/// the replica under `catch_unwind`, deposit, and complete the job if
/// this was its last replica. Exits when the pool drains and the queue
/// is empty.
fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    // Mark started while still holding the lock so
                    // `revoke` can never race a pickup.
                    task.job.started.store(true, Ordering::Release);
                    break Some(task);
                }
                if state.draining {
                    break None;
                }
                state = shared.work.wait(state).expect("pool mutex poisoned");
            }
        };
        let Some(task) = task else {
            return;
        };
        if task.job.plan.is_coupled() {
            match catch_unwind(AssertUnwindSafe(|| task.job.plan.run_solo())) {
                Ok(outcome) => send_result(&task.job, Ok(outcome)),
                Err(_) => task.job.panicked.store(true, Ordering::Release),
            }
        } else {
            match catch_unwind(AssertUnwindSafe(|| task.job.plan.run_replica(task.replica))) {
                Ok(pair) => deposit(&task.job, task.replica, pair),
                Err(_) => task.job.panicked.store(true, Ordering::Release),
            }
        }
        if task.job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            complete_job(&task.job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(cop: CopKind, seed: u64) -> JobSpec {
        JobSpec {
            cop,
            size: 12,
            seed,
            restarts: 2,
            step_budget: Some(30_000),
            ..JobSpec::default()
        }
    }

    #[test]
    fn validate_rejects_degenerate_fields() {
        let zero_size = JobSpec {
            size: 0,
            ..JobSpec::default()
        };
        assert!(matches!(zero_size.validate(), Err(SachiError::Usage(_))));
        let zero_restarts = JobSpec {
            restarts: 0,
            ..JobSpec::default()
        };
        assert!(matches!(
            zero_restarts.validate(),
            Err(SachiError::Usage(_))
        ));
        let zero_budget = JobSpec {
            step_budget: Some(0),
            ..JobSpec::default()
        };
        let err = zero_budget.validate().unwrap_err();
        assert!(matches!(&err, SachiError::Usage(m) if m.contains("step_budget")));
        assert_eq!(err.exit_code(), 2);
        let bad_resolution = JobSpec {
            resolution: Some(0),
            ..JobSpec::default()
        };
        assert!(matches!(
            bad_resolution.validate(),
            Err(SachiError::Config(_))
        ));
        let bad_ber = JobSpec {
            fault_ber: Some(1.5),
            ..JobSpec::default()
        };
        assert!(matches!(bad_ber.validate(), Err(SachiError::Usage(_))));
        assert!(JobSpec::default().validate().is_ok());
    }

    #[test]
    fn admit_maps_limit_breaches_to_server_code_5() {
        let limits = JobLimits {
            max_size: 64,
            max_restarts: 4,
            max_step_budget: 1_000,
        };
        let ok = JobSpec {
            size: 64,
            restarts: 4,
            step_budget: Some(1_000),
            ..JobSpec::default()
        };
        assert!(ok.admit(&limits).is_ok());
        for spec in [
            JobSpec {
                size: 65,
                ..ok.clone()
            },
            JobSpec {
                restarts: 5,
                ..ok.clone()
            },
            JobSpec {
                step_budget: Some(1_001),
                ..ok.clone()
            },
        ] {
            let err = spec.admit(&limits).unwrap_err();
            assert_eq!(err.exit_code(), 5, "{err}");
            assert!(matches!(
                err,
                SachiError::Server {
                    reason: ServerReason::OverLimit,
                    ..
                }
            ));
        }
        // Intrinsic invalidity still wins over limit checks.
        let zero = JobSpec {
            size: 0,
            ..JobSpec::default()
        };
        assert_eq!(zero.admit(&limits).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn plan_rejects_unrepresentable_resolution() {
        let spec = JobSpec {
            resolution: Some(1),
            ..small_spec(CopKind::MolecularDynamics, 3)
        };
        let err = JobPlan::from_spec(&spec).unwrap_err();
        assert!(matches!(&err, SachiError::Config(m) if m.contains("resolution")));
    }

    #[test]
    fn pooled_jobs_match_solo_runs() {
        let specs = [
            small_spec(CopKind::MolecularDynamics, 11),
            small_spec(CopKind::SatThree, 12),
            small_spec(CopKind::GraphColoring, 13),
        ];
        let solo: Vec<JobOutcome> = specs
            .iter()
            .map(|s| JobPlan::from_spec(s).unwrap().run_solo())
            .collect();
        for threads in [1, 3] {
            let pool = SolverPool::with_workers(threads);
            let handles: Vec<JobHandle> = specs
                .iter()
                .map(|s| pool.submit(JobPlan::from_spec(s).unwrap()))
                .collect();
            for (handle, want) in handles.iter().zip(&solo) {
                let got = handle.wait().unwrap();
                assert_eq!(got.best, want.best);
                assert_eq!(got.report.serial_cycles, want.report.serial_cycles);
                assert!((got.accuracy - want.accuracy).abs() < 1e-12);
            }
            pool.join();
        }
    }

    #[test]
    fn tempered_pooled_jobs_match_solo_runs_and_carry_swap_stats() {
        let spec = JobSpec {
            tempering: true,
            ladder: LadderKind::Adaptive,
            restarts: 4,
            ..small_spec(CopKind::SatThree, 17)
        };
        let solo = JobPlan::from_spec(&spec).unwrap().run_solo();
        assert!(solo.best.stats.swap_attempts > 0, "exchange rounds ran");
        assert_eq!(solo.best.replicas.len(), 4);
        assert_eq!(solo.report.reports.len(), 4);
        for threads in [1, 3] {
            let pool = SolverPool::with_workers(threads);
            // A co-tenant uncoupled job shares the pool: coupling must
            // not disturb it, nor it the coupled job.
            let co = pool.submit(JobPlan::from_spec(&small_spec(CopKind::SatThree, 17)).unwrap());
            let handle = pool.submit(JobPlan::from_spec(&spec).unwrap());
            let got = handle.wait().unwrap();
            assert_eq!(got.best, solo.best, "threads = {threads}");
            assert_eq!(got.report.serial_cycles, solo.report.serial_cycles);
            assert!((got.accuracy - solo.accuracy).abs() < 1e-12);
            let co_want = JobPlan::from_spec(&small_spec(CopKind::SatThree, 17))
                .unwrap()
                .run_solo();
            assert_eq!(co.wait().unwrap().best, co_want.best);
            pool.join();
        }
        // Swaps disabled ⇒ the spec lowers to the uncoupled path and
        // matches the plain ensemble byte-for-byte.
        let plain = JobPlan::from_spec(&JobSpec {
            tempering: false,
            ..spec.clone()
        })
        .unwrap();
        assert!(!plain.is_coupled());
    }

    #[test]
    fn poison_job_degrades_only_itself() {
        // A plan whose init does not match the graph panics the machine
        // (`solve_detailed` asserts the sizes agree) — the canonical
        // poison job. Build a healthy plan and corrupt the init.
        let healthy = small_spec(CopKind::MolecularDynamics, 21);
        let mut poison = JobPlan::from_spec(&healthy).unwrap();
        poison.init = SpinVector::filled(3, sachi_ising::spin::Spin::Up);
        let pool = SolverPool::with_workers(2);
        let bad = pool.submit(poison);
        let good = pool.submit(JobPlan::from_spec(&healthy).unwrap());
        let err = bad.wait().unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(err.to_string().contains("isolated"));
        // The co-tenant job and the pool itself are unharmed.
        let got = good.wait().unwrap();
        let want = JobPlan::from_spec(&healthy).unwrap().run_solo();
        assert_eq!(got.best, want.best);
        let again = pool.submit(JobPlan::from_spec(&healthy).unwrap());
        assert_eq!(again.wait().unwrap().best, want.best);
        pool.join();
    }

    #[test]
    fn revoke_resolves_unstarted_jobs_with_deadline_code() {
        // A single-worker pool wedged on a long job cannot start the
        // second submission, so revocation must succeed and resolve it
        // with the deadline code.
        let wide = JobSpec {
            restarts: 4,
            step_budget: Some(2_000_000),
            size: 64,
            ..JobSpec::default()
        };
        let pool = SolverPool::with_workers(1);
        let first = pool.submit(JobPlan::from_spec(&wide).unwrap());
        let second = pool.submit(JobPlan::from_spec(&small_spec(CopKind::SatThree, 5)).unwrap());
        // The second job sits behind four long replicas; revoke it.
        assert!(pool.revoke(&second));
        let err = second.wait().unwrap_err();
        assert_eq!(err.exit_code(), 5);
        assert!(matches!(
            err,
            SachiError::Server {
                reason: ServerReason::DeadlineExpired,
                ..
            }
        ));
        assert!(first.wait().is_ok());
        // Revoking a completed (started) job refuses.
        assert!(!pool.revoke(&first));
        pool.join();
    }

    #[test]
    fn cancelled_jobs_stop_at_the_first_sweep_boundary() {
        let plan = JobPlan::from_spec(&JobSpec {
            size: 64,
            restarts: 2,
            ..JobSpec::default()
        })
        .unwrap();
        let token = plan.cancel_token().unwrap();
        // Raise the flag before any worker starts: every replica must
        // bail before its first sweep, deterministically.
        token.cancel();
        let pool = SolverPool::with_workers(2);
        let handle = pool.submit(plan);
        let outcome = handle.wait().unwrap();
        for r in &outcome.best.replicas {
            assert_eq!(r.sweeps, 0);
            assert!(!r.converged);
        }
        pool.join();
    }

    #[test]
    fn draining_pool_rejects_new_submissions_with_shutdown_code() {
        let pool = SolverPool::with_workers(2);
        let before =
            pool.submit(JobPlan::from_spec(&small_spec(CopKind::MolecularDynamics, 7)).unwrap());
        pool.join();
        // In-flight work admitted before the drain still completes.
        assert!(before.wait().is_ok());
        let after =
            pool.submit(JobPlan::from_spec(&small_spec(CopKind::MolecularDynamics, 8)).unwrap());
        let err = after.wait().unwrap_err();
        assert_eq!(err.exit_code(), 5);
        assert!(matches!(
            err,
            SachiError::Server {
                reason: ServerReason::ShuttingDown,
                ..
            }
        ));
    }

    #[test]
    fn outcome_metrics_match_the_solo_fold() {
        let plan = JobPlan::from_spec(&small_spec(CopKind::MolecularDynamics, 2)).unwrap();
        let outcome = plan.run_solo();
        let reg = outcome.metrics();
        assert!(reg.counters().any(|(name, _)| name.starts_with("solver_")));
        assert!(reg.counters().any(|(name, _)| name == "ensemble_replicas"));
    }

    #[test]
    fn fault_error_mirrors_the_cli_verdicts() {
        // No faults configured: a clean outcome carries no fault error.
        let outcome = JobPlan::from_spec(&small_spec(CopKind::MolecularDynamics, 2))
            .unwrap()
            .run_solo();
        assert!(outcome.fault_error(RecoveryPolicy::default()).is_none());
        assert!(outcome.fault_error(RecoveryPolicy::FailFast).is_none());
    }

    #[test]
    fn cop_problems_match_the_cli_construction() {
        for kind in CopKind::EXTENDED {
            let p = build_cop_problem(kind, 12, 3).unwrap();
            assert!(p.graph.num_spins() > 0, "{}", p.name);
            // The scorer runs on a vector of the right length.
            let mut rng = StdRng::seed_from_u64(1);
            let spins = SpinVector::random(p.graph.num_spins(), &mut rng);
            let acc = (p.accuracy)(&spins);
            assert!(acc.is_finite());
        }
    }
}
