//! Thread-safe per-replica performance accounting for parallel
//! replica ensembles.
//!
//! The functional machines report cycle/energy accounting through
//! [`RunReport`]; when [`sachi_ising::ensemble::EnsembleRunner`] fans
//! replicas out over worker threads, those reports arrive from many
//! threads in completion order. [`ReplicaLedger`] collects them into
//! replica-indexed slots behind a mutex, and [`EnsembleReport`] folds
//! them into the aggregate the multicore cross-check needs: serial
//! cycle cost, critical-path cycle cost at a given thread count, and a
//! merged energy ledger. `disc_multicore` and `fig17_scalability`
//! compare the resulting replica-parallel speedups against
//! [`crate::multicore::MulticoreModel`]'s partition-parallel estimates.

use crate::machine::{RunReport, SachiMachine};
use sachi_ising::graph::IsingGraph;
use sachi_ising::solver::{IterativeSolver, SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::energy::EnergyLedger;
use sachi_mem::units::convert::{count_u64, ratio_u64};
use sachi_mem::units::Cycles;
use sachi_obs::MetricsRegistry;
use std::sync::Mutex;

/// Anything that can run the solve protocol *and* report accounting —
/// the functional machines, as opposed to the golden CPU solver.
pub trait DetailedSolver {
    /// Runs the solve and returns the outcome plus its [`RunReport`].
    fn solve_with_report(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> (SolveResult, RunReport);
}

impl DetailedSolver for SachiMachine {
    fn solve_with_report(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> (SolveResult, RunReport) {
        self.solve_detailed(graph, initial, options)
    }
}

impl DetailedSolver for crate::tiled::ResidentN3Machine {
    fn solve_with_report(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> (SolveResult, RunReport) {
        self.solve_detailed(graph, initial, options)
    }
}

/// Thread-safe collection point for per-replica [`RunReport`]s.
///
/// Reports land in the slot named by their replica index, so the
/// finished aggregate is independent of completion order — the same
/// rule the ensemble engine applies to [`SolveResult`]s.
#[derive(Debug)]
pub struct ReplicaLedger {
    slots: Mutex<Vec<Option<RunReport>>>,
}

impl ReplicaLedger {
    /// Creates a ledger with one empty slot per replica.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        ReplicaLedger {
            slots: Mutex::new(vec![None; replicas]),
        }
    }

    /// Records `report` as replica `replica`'s accounting. Callable from
    /// any worker thread.
    ///
    /// A replica that reports more than once — a parallel-tempering rung
    /// runs one constant-temperature solve segment per exchange round,
    /// each through a fresh [`ReportingMachine`] — has its reports
    /// merged with [`RunReport::absorb`], so the slot holds the rung's
    /// whole-run accounting. Segments arrive in round order within one
    /// rung (the tempering engine barriers between rounds), so the merge
    /// is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn record(&self, replica: usize, report: RunReport) {
        let mut slots = self
            .slots
            .lock()
            .expect("replica ledger mutex poisoned: a replica panicked");
        assert!(replica < slots.len(), "replica index within ledger");
        match &mut slots[replica] {
            Some(existing) => existing.absorb(&report),
            empty => *empty = Some(report),
        }
    }

    /// Folds the collected reports into an [`EnsembleReport`].
    ///
    /// # Panics
    ///
    /// Panics if any replica never reported.
    pub fn finish(self) -> EnsembleReport {
        let reports: Vec<RunReport> = self
            .slots
            .into_inner()
            .expect("replica ledger mutex poisoned: a replica panicked")
            .into_iter()
            .map(|slot| slot.expect("every replica records a report"))
            .collect();
        EnsembleReport::fold(reports)
    }
}

/// Aggregate accounting over every replica of an ensemble.
#[derive(Debug, Clone)]
pub struct EnsembleReport {
    /// Per-replica reports, in replica order.
    pub reports: Vec<RunReport>,
    /// Sum of every replica's critical-path cycles — the cost of running
    /// the ensemble on one core.
    pub serial_cycles: Cycles,
    /// The longest single replica — the critical path with unlimited
    /// parallelism.
    pub max_replica_cycles: Cycles,
    /// Merged per-component energy across replicas (parallelism moves
    /// work in time, not in joules).
    pub energy: EnergyLedger,
    /// Parity detections summed over every replica.
    pub faults_detected: u64,
    /// Injected transient flips summed over every replica.
    pub faults_injected: u64,
    /// Recovery re-fetches summed over every replica.
    pub fault_retries: u64,
    /// Replicas whose fault recovery gave up (degraded or aborted).
    pub degraded_replicas: u64,
}

impl EnsembleReport {
    /// Folds per-replica reports (in replica order) into the ensemble
    /// report. Public so external schedulers — the `sachi serve` job
    /// pool packs replicas from different jobs onto one worker pool —
    /// apply the exact fold [`ReplicaLedger::finish`] applies, keeping
    /// reports byte-identical regardless of which host ran the
    /// replicas.
    pub fn fold(reports: Vec<RunReport>) -> Self {
        let mut serial = Cycles::ZERO;
        let mut longest = Cycles::ZERO;
        let mut energy = EnergyLedger::new();
        let mut faults_detected = 0u64;
        let mut faults_injected = 0u64;
        let mut fault_retries = 0u64;
        let mut degraded_replicas = 0u64;
        for report in &reports {
            serial += report.total_cycles;
            longest = longest.max(report.total_cycles);
            energy.merge(&report.energy);
            faults_detected += report.faults.detected;
            faults_injected += report.faults.injected_flips;
            fault_retries += report.faults.retries;
            degraded_replicas += u64::from(report.faults.degraded);
        }
        EnsembleReport {
            reports,
            serial_cycles: serial,
            max_replica_cycles: longest,
            energy,
            faults_detected,
            faults_injected,
            fault_retries,
            degraded_replicas,
        }
    }

    /// Critical-path cycles of a deterministic longest-first-free
    /// schedule of the replicas over `threads` workers: replicas are
    /// assigned in replica order to the least-loaded worker. This is the
    /// model-side cost a `T`-thread ensemble run should approach.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn scheduled_cycles(&self, threads: usize) -> Cycles {
        assert!(threads > 0, "need at least one thread");
        let mut loads = vec![Cycles::ZERO; threads.min(self.reports.len()).max(1)];
        for report in &self.reports {
            let lightest = loads
                .iter_mut()
                .min_by_key(|c| c.get())
                .expect("at least one worker load slot");
            *lightest += report.total_cycles;
        }
        loads
            .into_iter()
            .max_by_key(|c| c.get())
            .unwrap_or(Cycles::ZERO)
    }

    /// Modeled replica-parallel speedup at `threads` workers:
    /// serial cycles over scheduled critical-path cycles. Replicas of
    /// equal length approach `min(threads, replicas)`; this is the
    /// number the measured wall-clock speedup is cross-checked against.
    pub fn ideal_speedup(&self, threads: usize) -> f64 {
        self.serial_cycles.ratio(self.scheduled_cycles(threads))
    }

    /// Folds every replica's metrics into one registry.
    ///
    /// Replicas are walked in **index order**, so the snapshot is a pure
    /// function of the replica set: counters and histograms add, and the
    /// run-level gauges (energy, reuse) are recomputed here from the
    /// folded totals. Worker-thread count is provably unobservable —
    /// the ensemble conformance proptest pins exactly that.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for report in &self.reports {
            report.export_metrics(&mut reg);
        }
        // Ensemble-level aggregates, replacing the "last replica wins"
        // gauges the sequential export left behind.
        self.energy.export(&mut reg);
        let rwl = reg.counter("machine_rwl_bits_fetched");
        if rwl > 0 {
            reg.gauge_set(
                "machine_reuse",
                ratio_u64(reg.counter("machine_xnor_ops"), rwl),
            );
        }
        reg.counter_add("ensemble_replicas", count_u64(self.reports.len()));
        reg.counter_add("ensemble_serial_cycles", self.serial_cycles.get());
        reg.counter_add("ensemble_max_replica_cycles", self.max_replica_cycles.get());
        reg
    }
}

/// An [`IterativeSolver`] adapter that runs a [`DetailedSolver`] and
/// deposits its [`RunReport`] into a [`ReplicaLedger`] — the factory
/// product that lets `EnsembleRunner::run` drive hardware machines
/// while their accounting is folded thread-safely on the side.
#[derive(Debug)]
pub struct ReportingMachine<'a, M: DetailedSolver> {
    machine: M,
    replica: usize,
    ledger: &'a ReplicaLedger,
}

impl<'a, M: DetailedSolver> ReportingMachine<'a, M> {
    /// Wraps `machine` as replica `replica`, reporting into `ledger`.
    pub fn new(machine: M, replica: usize, ledger: &'a ReplicaLedger) -> Self {
        ReportingMachine {
            machine,
            replica,
            ledger,
        }
    }
}

impl<M: DetailedSolver> IterativeSolver for ReportingMachine<'_, M> {
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        let (result, report) = self.machine.solve_with_report(graph, initial, options);
        self.ledger.record(self.replica, report);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignKind, SachiConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::ensemble::EnsembleRunner;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::CpuReferenceSolver;

    fn setup() -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(8, 8, |i, j| ((i + 2 * j) % 5) as i32 - 2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let init = SpinVector::random(64, &mut rng);
        let opts = SolveOptions::for_graph(&g, 13).with_max_sweeps(40);
        (g, init, opts)
    }

    #[test]
    fn parallel_machine_ensemble_matches_golden_and_folds_reports() {
        let (g, init, opts) = setup();
        let replicas = 5;
        let ledger = ReplicaLedger::new(replicas);
        let config = SachiConfig::new(DesignKind::N3);
        let best_of = EnsembleRunner::new(replicas)
            .with_threads(4)
            .run(&g, &init, &opts, |k| {
                ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
            });
        // Machines through the threaded ensemble equal the sequential
        // golden ensemble bit-for-bit.
        let mut golden = CpuReferenceSolver::new();
        let reference = EnsembleRunner::new(replicas).run_sequential(&mut golden, &g, &init, &opts);
        assert_eq!(best_of, reference);

        let report = ledger.finish();
        assert_eq!(report.reports.len(), replicas);
        let sum: Cycles = report.reports.iter().map(|r| r.total_cycles).sum();
        assert_eq!(report.serial_cycles, sum);
        assert!(report.max_replica_cycles <= report.serial_cycles);
        assert!(report.energy.total() >= report.reports[0].energy.total());
        // Replica order in the ledger matches replica sweep counts.
        for (r, rep) in best_of.replicas.iter().zip(&report.reports) {
            assert_eq!(r.sweeps, rep.sweeps);
        }
    }

    #[test]
    fn scheduled_cycles_interpolate_between_serial_and_critical_path() {
        let (g, init, opts) = setup();
        let ledger = ReplicaLedger::new(4);
        let config = SachiConfig::new(DesignKind::N2);
        let _ = EnsembleRunner::new(4)
            .with_threads(2)
            .run(&g, &init, &opts, |k| {
                ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
            });
        let report = ledger.finish();
        assert_eq!(report.scheduled_cycles(1), report.serial_cycles);
        let two = report.scheduled_cycles(2);
        assert!(two <= report.serial_cycles && two >= report.max_replica_cycles);
        // Speedup is monotone and bounded by the replica count.
        let s1 = report.ideal_speedup(1);
        let s4 = report.ideal_speedup(4);
        assert!((s1 - 1.0).abs() < 1e-12);
        assert!(s4 >= s1 && s4 <= 4.0 + 1e-12);
        // More threads than replicas change nothing.
        assert_eq!(report.scheduled_cycles(64), report.scheduled_cycles(4));
    }

    #[test]
    fn repeated_records_merge_segment_reports() {
        let (g, init, opts) = setup();
        let ledger = ReplicaLedger::new(1);
        let mut m = SachiMachine::new(SachiConfig::new(DesignKind::N1a));
        let (_, report) = m.solve_detailed(&g, &init, &opts);
        ledger.record(0, report.clone());
        ledger.record(0, report.clone());
        let folded = ledger.finish();
        let merged = &folded.reports[0];
        assert_eq!(merged.sweeps, 2 * report.sweeps);
        assert_eq!(
            merged.total_cycles,
            report.total_cycles + report.total_cycles
        );
        assert_eq!(merged.xnor_ops, 2 * report.xnor_ops);
        // Peaks take the max, ratios are recomputed — not doubled.
        assert_eq!(merged.queue_peak_bits, report.queue_peak_bits);
        assert!((merged.reuse - report.reuse).abs() < 1e-9);
        assert!(merged.energy.total() > report.energy.total());
    }

    #[test]
    #[should_panic(expected = "replica index within ledger")]
    fn out_of_range_record_rejected() {
        let (g, init, opts) = setup();
        let ledger = ReplicaLedger::new(1);
        let mut m = SachiMachine::new(SachiConfig::new(DesignKind::N1a));
        let (_, report) = m.solve_detailed(&g, &init, &opts);
        ledger.record(1, report);
    }
}
