//! The four stationarity designs of Sec. IV.D (Figs. 11–13).
//!
//! Each design answers the same question — "how does a tuple's `H_σ` flow
//! through the compute array?" — with a different choice of what stays
//! resident in the SRAM (*stationary*) and what is driven on the read
//! word-lines:
//!
//! | design | resident in array | driven on RWL | phase-1 cycles | reuse |
//! |---|---|---|---|---|
//! | n1a | neighbor spins | J bits, bit-major | N·R | 1 |
//! | n1b | neighbor spins | J bits, IC-major  | N·R | 1 |
//! | n2  | ICs (one per row) | neighbor spins | N | R |
//! | n3  | ICs + neighbor spins | target spin σ_i | ⌈N/(row capacity)⌉ | N·R |
//!
//! The `compute_tuple` implementations are *functional*: they lay the
//! stationary data into a real [`SramTile`], pulse the word-lines, and
//! assemble `H_σ` from the sensed discharge pattern — so every design is
//! checked bit-for-bit against the golden local field. The closed-form
//! schedule methods (`phase1_cycles`, `idle_cycles`, `xnor_queue_bits`,
//! `max_reuse`, footprints) feed the analytic performance model of
//! [`crate::perf`].

use crate::config::DesignKind;
use crate::encoding::MixedEncoding;
use crate::tuple::{SpinTuple, TuplePlaneView};
use sachi_ising::spin::Spin;
use sachi_mem::lanes;
use sachi_mem::sram::{gather_bits, SramTile};
use sachi_mem::units::convert::{count_u64, ratio_u64, to_index};

/// Per-solve counters a design accumulates while computing tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComputeContext {
    /// Compute-array cycles spent in phase 1.
    pub cycles: u64,
    /// Bits fetched from the storage array onto the RWLs (the data-movement
    /// traffic whose reuse the paper optimizes).
    pub rwl_bits_fetched: u64,
    /// Useful in-memory XNOR bit computations performed.
    pub xnor_ops: u64,
    /// Near-memory full-adder bit operations.
    pub adder_bit_ops: u64,
    /// XNOR-vs-XNOR+1 (and XOR) decisions taken.
    pub decisions: u64,
    /// High-water mark of the XNOR queue, in bits.
    pub queue_peak_bits: u64,
}

impl ComputeContext {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        ComputeContext::default()
    }

    /// Reuse achieved so far: useful XNOR computes per RWL bit fetched.
    /// BRIM and Ising-CIM sit at 1.0 by construction; SACHI(n3) approaches
    /// `N·R`.
    pub fn reuse(&self) -> f64 {
        if self.rwl_bits_fetched == 0 {
            return 0.0;
        }
        ratio_u64(self.xnor_ops, self.rwl_bits_fetched)
    }

    fn note_queue(&mut self, bits: u64) {
        self.queue_peak_bits = self.queue_peak_bits.max(bits);
    }
}

/// Reusable buffers for the designs' bit-plane fast path
/// ([`Stationarity::compute_tuple_fast`]): encoded coupling planes, XNOR
/// result planes, a packed output row, and the spin-row residency tag that
/// lets the spin-stationary designs skip redundant spin-row rewrites.
///
/// Create one per machine and hoist it out of the sweep loop: buffers grow
/// on demand and are reused across calls, so the steady-state fast path
/// performs no heap allocation.
///
/// The residency tag assumes the scratch stays paired with **one** tile:
/// it remembers what was last written to that tile's row 0 and elides the
/// write when the identical packed spin row reappears. Call
/// [`ComputeScratch::invalidate`] if the paired tile's row 0 is written
/// through any other path (the n2/n3 fast paths do this themselves).
#[derive(Debug, Clone, Default)]
pub struct ComputeScratch {
    /// Encoded coupling bit-planes: R planes of `plane_words(n)` words.
    planes: Vec<u64>,
    /// XNOR result planes, same shape as `planes`.
    xnor: Vec<u64>,
    /// Packed sensed-output row for the single-access kernels (n2/n3).
    row_out: Vec<u64>,
    /// Packed spin row as last written to the paired tile's row 0.
    resident_row: Vec<u64>,
    /// Freshly packed spin row, compared against `resident_row`.
    packed_row: Vec<u64>,
    /// `(target, degree)` of the tuple whose spin row is resident.
    resident: Option<(u32, usize)>,
    /// Redundant spin-row *words* elided by the residency check (word-
    /// granular: a partially changed row rewrites only its dirty words and
    /// counts each clean word here).
    pub skipped_spin_writes: u64,
}

impl ComputeScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        ComputeScratch::default()
    }

    /// Forgets the spin-row residency tag. Call when the paired tile's
    /// row 0 may have been written outside [`ComputeScratch`]'s control.
    pub fn invalidate(&mut self) {
        self.resident = None;
    }

    fn ensure_planes(&mut self, r: u32, words: usize) {
        let need = to_index(r) * words;
        if self.planes.len() < need {
            self.planes.resize(need, 0);
        }
        if self.xnor.len() < need {
            self.xnor.resize(need, 0);
        }
    }

    fn ensure_row_out(&mut self, words: usize) {
        if self.row_out.len() < words {
            self.row_out.resize(words, 0);
        }
    }

    /// Sizes the buffers for the IC-stationary batched schedule: `planes`
    /// doubles as the per-row encoded-coupling words (`n` of them),
    /// `row_out` holds one sensed word per row, and `packed_row` holds
    /// the `drive_words` row-aligned drive bits.
    fn ensure_row_batch(&mut self, n: usize, drive_words: usize) {
        if self.planes.len() < n {
            self.planes.resize(n, 0);
        }
        if self.row_out.len() < n {
            self.row_out.resize(n, 0);
        }
        if self.packed_row.len() < drive_words {
            self.packed_row.resize(drive_words, 0);
        }
    }

    fn ensure_spin_row(&mut self, words: usize) {
        if self.packed_row.len() < words {
            self.packed_row.resize(words, 0);
        }
        if self.resident_row.len() < words {
            self.resident_row.resize(words, 0);
        }
    }

    /// Packs the tuple's neighbor spins from the AoS tuple and writes them
    /// to the tile's row 0 through [`ComputeScratch::writeback_spin_row`].
    fn upload_spin_row(&mut self, tile: &mut SramTile, tuple: &SpinTuple) {
        let n = tuple.degree();
        let words = MixedEncoding::plane_words(n);
        self.ensure_spin_row(words);
        for w in &mut self.packed_row[..words] {
            *w = 0;
        }
        for (k, s) in tuple.neighbor_spins.iter().enumerate() {
            if s.bit() {
                self.packed_row[k / 64] |= 1u64 << (k % 64);
            }
        }
        self.writeback_spin_row(tile, tuple.target, n);
    }

    /// Uploads a pre-packed spin row (the SoA `spin_words` arena) to the
    /// tile's row 0 through [`ComputeScratch::writeback_spin_row`] — the
    /// zero-repack path of [`Stationarity::compute_tuple_soa`].
    fn upload_spin_row_words(
        &mut self,
        tile: &mut SramTile,
        target: u32,
        n: usize,
        spin_words: &[u64],
    ) {
        let words = MixedEncoding::plane_words(n);
        self.ensure_spin_row(words);
        self.packed_row[..words].copy_from_slice(&spin_words[..words]);
        self.writeback_spin_row(tile, target, n);
    }

    /// Writes the packed spin row to the tile's row 0 with word-granular
    /// rewrite elision: a word whose resident copy already equals the new
    /// value is skipped (the write and its `bits_written` accounting are
    /// elided — re-driving write word-lines with unchanged data is work
    /// the silicon never does), and a partially changed row rewrites only
    /// its dirty words. A tuple change re-arms the full-row write.
    fn writeback_spin_row(&mut self, tile: &mut SramTile, target: u32, n: usize) {
        let words = MixedEncoding::plane_words(n);
        if self.resident == Some((target, n)) {
            for wi in 0..words {
                if self.resident_row[wi] == self.packed_row[wi] {
                    self.skipped_spin_writes += 1;
                    continue;
                }
                let width = (n - wi * 64).min(64);
                tile.write_bits_from_word(0, wi * 64, width, self.packed_row[wi])
                    .expect("tile sized by tile_requirements");
                self.resident_row[wi] = self.packed_row[wi];
            }
            return;
        }
        tile.write_row_words(0, &self.packed_row[..words], n)
            .expect("tile sized by tile_requirements");
        self.resident_row[..words].copy_from_slice(&self.packed_row[..words]);
        self.resident = Some((target, n));
    }
}

/// A stationarity design: functional tuple compute plus its closed-form
/// schedule. This trait is sealed by construction — the four designs are
/// fixed by the paper; obtain them via [`stationarity`].
pub trait Stationarity {
    /// Which design this is.
    fn kind(&self) -> DesignKind;

    /// Scratch-tile dimensions needed to compute a tuple of `max_degree`
    /// neighbors at resolution `r` with physical rows of `row_bits`
    /// columns.
    fn tile_requirements(&self, max_degree: usize, r: u32, row_bits: usize) -> (usize, usize);

    /// Lays the tuple into `tile`, pulses the word-lines, and returns
    /// `H_σ` assembled from the sensed XNOR outputs. Counters accumulate
    /// into `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if the tile is smaller than
    /// [`Stationarity::tile_requirements`] demands or a coefficient does
    /// not fit in the encoding.
    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64;

    /// Bit-plane fast path: identical `H_σ`, identical
    /// [`sachi_mem::sram::TileStats`] deltas, and identical
    /// [`ComputeContext`] updates to [`Stationarity::compute_tuple`]
    /// (proven by differential proptests), with zero steady-state heap
    /// allocation — all buffers live in `scratch` and are reused across
    /// calls. The default implementation falls back to the scalar path;
    /// all four designs override it with word-parallel plane kernels.
    ///
    /// The one sanctioned divergence: the spin-stationary designs elide
    /// rewriting a spin row that is already resident in the paired tile
    /// (the residency tag lives in `scratch`), so `bits_written` can
    /// advance less than the scalar path when the same tuple is recomputed
    /// against unchanged spins. Stored tile bits, H, and every compute
    /// counter still match exactly.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Stationarity::compute_tuple`].
    fn compute_tuple_fast(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let _ = scratch;
        self.compute_tuple(tile, enc, tuple, target, ctx)
    }

    /// Structure-of-arrays fast path: identical contract to
    /// [`Stationarity::compute_tuple_fast`] (same `H_σ`, same
    /// [`ComputeContext`] and [`sachi_mem::sram::TileStats`] deltas, same
    /// sanctioned `bits_written` elision), but every encoded operand comes
    /// pre-computed from `view` — no per-compute `MixedEncoding` encode,
    /// no spin re-pack. `view` must be the [`crate::tuple::TuplePlanes`]
    /// view of `tuple` at `enc`'s resolution, kept current under spin
    /// updates via [`crate::tuple::TuplePlanes::writeback_spin`].
    ///
    /// The default implementation ignores `view` and falls back to the
    /// AoS fast path; all four designs override it.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Stationarity::compute_tuple`], or if `view` does not match
    /// `tuple`.
    #[allow(clippy::too_many_arguments)]
    fn compute_tuple_soa(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        view: TuplePlaneView<'_>,
        target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let _ = view;
        self.compute_tuple_fast(tile, enc, tuple, target, ctx, scratch)
    }

    /// Phase-1 (in-memory compute) cycles for a tuple of `n` neighbors.
    fn phase1_cycles(&self, n: u64, r: u32, row_bits: u64) -> u64;

    /// Pipeline-fill idle cycles before phases 3–5 first activate
    /// (Fig. 11f): `(R-1)·N + 1` for n1a, `R` for n1b, a 1–2 cycle skew
    /// for n2/n3.
    fn idle_cycles(&self, n: u64, r: u32) -> u64;

    /// Minimum XNOR-queue capacity in bits (phase 2): `N·(R+1)` for n1a,
    /// `R+1` for n1b, zero for n2/n3.
    fn xnor_queue_bits(&self, n: u64, r: u32) -> u64;

    /// Maximum reuse: 1, 1, `R`, `N·R`.
    fn max_reuse(&self, n: u64, r: u32) -> u64;

    /// Compute-array bits a tuple keeps resident.
    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64;

    /// Storage-array bits driven onto RWLs per `H_σ` compute.
    fn driven_bits_per_tuple(&self, n: u64, r: u32, row_bits: u64) -> u64;
}

/// Returns the implementation of a design.
pub fn stationarity(kind: DesignKind) -> &'static dyn Stationarity {
    match kind {
        DesignKind::N1a => &SpinStationaryBitMajor,
        DesignKind::N1b => &SpinStationaryIcMajor,
        DesignKind::N2 => &IcStationary,
        DesignKind::N3 => &MixedStationary,
    }
}

/// How many (R+1)-bit neighbor groups fit in one n3 row.
fn n3_groups_per_row(r: u32, row_bits: u64) -> u64 {
    (row_bits / (u64::from(r) + 1)).max(1)
}

/// Shared finale for the n1 designs: assemble products from queued XNOR
/// bits, then fold in the field and negate (phases 3–5).
fn finish_from_products(
    products: impl Iterator<Item = i64>,
    field: i32,
    r: u32,
    ctx: &mut ComputeContext,
) -> i64 {
    let mut acc = i64::from(field); // full adder initialized to h (phase 4)
    for p in products {
        acc += p;
        ctx.adder_bit_ops += u64::from(r) + 2;
        ctx.decisions += 1;
    }
    -acc // phase 5 negation: H_σ = -(Σ J σ + h)
}

fn layout_spins(tile: &mut SramTile, tuple: &SpinTuple) {
    let bits: Vec<bool> = tuple.neighbor_spins.iter().map(|s| s.bit()).collect();
    tile.write_row(0, &bits)
        .expect("tile sized by tile_requirements");
}

/// Shared phase-1 of the n1 fast paths: lay the spin row (skipping a
/// redundant rewrite), encode the couplings into bit-planes, and run one
/// word-parallel plane access per IC bit. The scalar n1a/n1b paths issue
/// the same *multiset* of single-column accesses in different orders;
/// tile counters are additive and order-independent, so one plane
/// schedule serves both designs bit-exactly — only their queue notes and
/// accumulation order differ. Returns the words per plane.
fn n1_plane_phase1(
    tile: &mut SramTile,
    enc: &MixedEncoding,
    tuple: &SpinTuple,
    ctx: &mut ComputeContext,
    scratch: &mut ComputeScratch,
) -> usize {
    let n = tuple.degree();
    let r = enc.bits();
    scratch.upload_spin_row(tile, tuple);
    let words = MixedEncoding::plane_words(n);
    scratch.ensure_planes(r, words);
    enc.encode_into(&tuple.couplings, &mut scratch.planes)
        .expect("coefficient fits the configured resolution");
    for b in 0..to_index(r) {
        let plane = &scratch.planes[b * words..(b + 1) * words];
        let out = &mut scratch.xnor[b * words..(b + 1) * words];
        tile.compute_xnor_plane(0, plane, 0..n, out)
            .expect("in-bounds by layout");
        ctx.cycles += count_u64(n);
        ctx.rwl_bits_fetched += count_u64(n);
        ctx.xnor_ops += count_u64(n);
    }
    words
}

/// Shared phase-1 of the n1 SoA paths: upload the pre-packed spin row and
/// drive the pre-encoded coupling planes straight out of the SoA arena —
/// the same access multiset as [`n1_plane_phase1`] with the per-compute
/// encode and spin re-pack gone. Returns the words per plane.
fn n1_plane_phase1_soa(
    tile: &mut SramTile,
    enc: &MixedEncoding,
    tuple: &SpinTuple,
    view: TuplePlaneView<'_>,
    ctx: &mut ComputeContext,
    scratch: &mut ComputeScratch,
) -> usize {
    let n = tuple.degree();
    let r = enc.bits();
    scratch.upload_spin_row_words(tile, tuple.target, n, view.spin_words);
    let words = MixedEncoding::plane_words(n);
    scratch.ensure_planes(r, words);
    for b in 0..to_index(r) {
        let plane = &view.coupling_planes[b * words..(b + 1) * words];
        let out = &mut scratch.xnor[b * words..(b + 1) * words];
        tile.compute_xnor_plane(0, plane, 0..n, out)
            .expect("in-bounds by layout");
        ctx.cycles += count_u64(n);
        ctx.rwl_bits_fetched += count_u64(n);
        ctx.xnor_ops += count_u64(n);
    }
    words
}

/// Shared finale for the n1 SoA paths: fold the whole XNOR plane set in
/// one popcount-weighted pass. Per lane `k`, the product is
/// `decode(xnor lane k) + [σ_k == Down]`; summed over lanes that is
/// `Σ_b ±2^b·popcount(plane_b)` ([`MixedEncoding::decode_plane_sum`])
/// plus the Down-spin count (`n − popcount(spin row)`) — the same integer
/// sum the per-lane loop computes, in O(R·words) popcounts instead of
/// O(N·R) shift/adds. Counter totals are the per-lane ones, batched.
fn n1_finish_soa(
    enc: &MixedEncoding,
    tuple: &SpinTuple,
    view: TuplePlaneView<'_>,
    words: usize,
    ctx: &mut ComputeContext,
    scratch: &ComputeScratch,
) -> i64 {
    let n = tuple.degree();
    let r = enc.bits();
    let nn = count_u64(n);
    let downs = nn - lanes::popcount(&view.spin_words[..words]);
    let downs = i64::try_from(downs).expect("spin-down count bounded by degree");
    let sum = enc.decode_plane_sum(&scratch.xnor[..to_index(r) * words], words);
    ctx.adder_bit_ops += nn * (u64::from(r) + 2);
    ctx.decisions += nn;
    -(i64::from(tuple.field) + sum + downs)
}

/// SACHI(n1a): spin stationary, bit-major XNOR order (Fig. 11a.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinStationaryBitMajor;

impl Stationarity for SpinStationaryBitMajor {
    fn kind(&self) -> DesignKind {
        DesignKind::N1a
    }

    fn tile_requirements(&self, max_degree: usize, _r: u32, _row_bits: usize) -> (usize, usize) {
        (1, max_degree.max(1))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        layout_spins(tile, tuple);
        // Phase 1: bit-major — XNOR the r-th bit of every IC before moving
        // to bit r+1. Each cycle drives one J bit and senses one column.
        let encoded: Vec<Vec<bool>> = tuple
            .couplings
            .iter()
            .map(|&j| {
                enc.encode(i64::from(j))
                    .expect("coefficient fits the configured resolution")
            })
            .collect();
        let mut queue = vec![vec![false; to_index(r)]; n];
        for b in 0..to_index(r) {
            for (k, bits) in encoded.iter().enumerate() {
                let out = tile
                    .compute_xnor_bit(0, bits[b], 0..n, k)
                    .expect("in-bounds by layout");
                queue[k][b] = out;
                ctx.cycles += 1;
                ctx.rwl_bits_fetched += 1;
                ctx.xnor_ops += 1;
            }
        }
        // The queue must hold every neighbor's partial bits at once
        // (minimum size N*(R+1), Sec. IV.D.1).
        ctx.note_queue(count_u64(n) * (u64::from(r) + 1));
        // Phases 3-5.
        let products = queue
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .map(|(bits, &s)| {
                let mut v = enc.decode(bits);
                if s == Spin::Down {
                    v += 1;
                }
                v
            });
        finish_from_products(products, tuple.field, r, ctx)
    }

    fn compute_tuple_fast(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        let words = n1_plane_phase1(tile, enc, tuple, ctx, scratch);
        ctx.note_queue(count_u64(n) * (u64::from(r) + 1));
        // Phases 3-5: decode each neighbor's product lane straight out of
        // the XNOR planes by shift/add — no Vec<bool> round-trip.
        let xnor = &scratch.xnor;
        let products = tuple.neighbor_spins.iter().enumerate().map(|(k, &s)| {
            let mut v = enc.decode_plane(xnor, words, k);
            if s == Spin::Down {
                v += 1;
            }
            v
        });
        finish_from_products(products, tuple.field, r, ctx)
    }

    fn compute_tuple_soa(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        view: TuplePlaneView<'_>,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        let words = n1_plane_phase1_soa(tile, enc, tuple, view, ctx, scratch);
        ctx.note_queue(count_u64(n) * (u64::from(r) + 1));
        n1_finish_soa(enc, tuple, view, words, ctx, scratch)
    }

    fn phase1_cycles(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }

    fn idle_cycles(&self, n: u64, r: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        (u64::from(r) - 1) * n + 1
    }

    fn xnor_queue_bits(&self, n: u64, r: u32) -> u64 {
        n * (u64::from(r) + 1)
    }

    fn max_reuse(&self, _n: u64, _r: u32) -> u64 {
        1
    }

    fn resident_bits_per_tuple(&self, n: u64, _r: u32) -> u64 {
        n
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }
}

/// SACHI(n1b): spin stationary, IC-major XNOR order (Fig. 11a.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinStationaryIcMajor;

impl Stationarity for SpinStationaryIcMajor {
    fn kind(&self) -> DesignKind {
        DesignKind::N1b
    }

    fn tile_requirements(&self, max_degree: usize, _r: u32, _row_bits: usize) -> (usize, usize) {
        (1, max_degree.max(1))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        layout_spins(tile, tuple);
        // Phase 1: IC-major — all bits of one J before the next J, so the
        // queue holds a single (R+1)-bit entry and phase 3 starts after R
        // cycles.
        let mut acc = i64::from(tuple.field);
        let mut queue_entry = vec![false; to_index(r)];
        for (k, &j) in tuple.couplings.iter().enumerate() {
            let bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            for (b, &jbit) in bits.iter().enumerate() {
                queue_entry[b] = tile
                    .compute_xnor_bit(0, jbit, 0..n, k)
                    .expect("in-bounds by layout");
                ctx.cycles += 1;
                ctx.rwl_bits_fetched += 1;
                ctx.xnor_ops += 1;
                ctx.note_queue(count_u64(b) + 1);
            }
            ctx.note_queue(u64::from(r) + 1);
            let mut v = enc.decode(&queue_entry);
            if tuple.neighbor_spins[k] == Spin::Down {
                v += 1;
            }
            acc += v;
            ctx.adder_bit_ops += u64::from(r) + 2;
            ctx.decisions += 1;
        }
        -acc
    }

    fn compute_tuple_fast(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        // Same plane schedule as n1a (the scalar paths differ only in call
        // order, which the additive counters cannot observe); the IC-major
        // queue discipline shows up solely in the closed-form queue note.
        let words = n1_plane_phase1(tile, enc, tuple, ctx, scratch);
        ctx.note_queue(u64::from(r) + 1);
        let mut acc = i64::from(tuple.field);
        for (k, &s) in tuple.neighbor_spins.iter().enumerate() {
            let mut v = enc.decode_plane(&scratch.xnor, words, k);
            if s == Spin::Down {
                v += 1;
            }
            acc += v;
            ctx.adder_bit_ops += u64::from(r) + 2;
            ctx.decisions += 1;
        }
        -acc
    }

    fn compute_tuple_soa(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        view: TuplePlaneView<'_>,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        let words = n1_plane_phase1_soa(tile, enc, tuple, view, ctx, scratch);
        ctx.note_queue(u64::from(r) + 1);
        n1_finish_soa(enc, tuple, view, words, ctx, scratch)
    }

    fn phase1_cycles(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }

    fn idle_cycles(&self, _n: u64, r: u32) -> u64 {
        u64::from(r)
    }

    fn xnor_queue_bits(&self, _n: u64, r: u32) -> u64 {
        u64::from(r) + 1
    }

    fn max_reuse(&self, _n: u64, _r: u32) -> u64 {
        1
    }

    fn resident_bits_per_tuple(&self, n: u64, _r: u32) -> u64 {
        n
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }
}

/// SACHI(n2): IC stationary (Fig. 12). One row per IC; the neighbor spin
/// drives the row's RWL pair and all R columns are sensed in one cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcStationary;

impl Stationarity for IcStationary {
    fn kind(&self) -> DesignKind {
        DesignKind::N2
    }

    fn tile_requirements(&self, max_degree: usize, r: u32, _row_bits: usize) -> (usize, usize) {
        (max_degree.max(1), to_index(r))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        // Layout: row k holds encode(J_ik).
        for (k, &j) in tuple.couplings.iter().enumerate() {
            let bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            tile.write_row(k, &bits)
                .expect("tile sized by tile_requirements");
        }
        // Phase 1: one neighbor per cycle, R columns sensed at once.
        let mut acc = i64::from(tuple.field);
        for (k, &s) in tuple.neighbor_spins.iter().enumerate() {
            let out = tile
                .compute_xnor(k, s.bit(), 0..to_index(r))
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += u64::from(r);
            let mut v = enc.decode(&out);
            if s == Spin::Down {
                v += 1;
            }
            acc += v;
            ctx.adder_bit_ops += u64::from(r) + 2;
            ctx.decisions += 1;
        }
        -acc
    }

    fn compute_tuple_fast(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        // The coupling rows overwrite whatever the tile held; any spin-row
        // residency another design recorded is void.
        scratch.invalidate();
        let cols = tile.cols();
        let rbits = to_index(r);
        let drive_words = MixedEncoding::plane_words(n);
        scratch.ensure_row_batch(n, drive_words);
        let ComputeScratch {
            planes,
            row_out,
            packed_row,
            ..
        } = scratch;
        // Layout: row k holds encode(J_ik), all rows in one batched write.
        for (slot, &j) in planes.iter_mut().zip(tuple.couplings.iter()) {
            *slot = enc
                .encode_word(i64::from(j))
                .expect("coefficient fits the configured resolution");
        }
        tile.write_rows_from_words(0, 0, rbits, &planes[..n])
            .expect("tile sized by tile_requirements");
        // Phase 1: one neighbor per cycle, R columns sensed at once — all
        // N accesses issued as a single batch with per-row drive bits.
        for w in &mut packed_row[..drive_words] {
            *w = 0;
        }
        for (k, s) in tuple.neighbor_spins.iter().enumerate() {
            if s.bit() {
                packed_row[k / 64] |= 1u64 << (k % 64);
            }
        }
        tile.compute_xnor_row_batch(
            0,
            n,
            &packed_row[..drive_words],
            0..cols,
            0..rbits,
            &mut row_out[..n],
        )
        .expect("in-bounds by layout");
        let nn = count_u64(n);
        ctx.cycles += nn;
        ctx.rwl_bits_fetched += nn;
        ctx.xnor_ops += nn * u64::from(r);
        ctx.adder_bit_ops += nn * (u64::from(r) + 2);
        ctx.decisions += nn;
        let mut acc = i64::from(tuple.field);
        for (out, &s) in row_out[..n].iter().zip(tuple.neighbor_spins.iter()) {
            let mut v = enc.decode_word(*out);
            if s == Spin::Down {
                v += 1;
            }
            acc += v;
        }
        -acc
    }

    fn compute_tuple_soa(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        view: TuplePlaneView<'_>,
        _target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        // The coupling rows overwrite whatever the tile held; any spin-row
        // residency another design recorded is void.
        scratch.invalidate();
        let cols = tile.cols();
        let rbits = to_index(r);
        let drive_words = MixedEncoding::plane_words(n);
        scratch.ensure_row_out(n);
        // Layout and drive both come straight out of the SoA arenas: the
        // encoded coupling rows upload as one batched write, the packed
        // spin row drives the batch — no per-compute encode or re-pack.
        tile.write_rows_from_words(0, 0, rbits, &view.coupling_words[..n])
            .expect("tile sized by tile_requirements");
        tile.compute_xnor_row_batch(
            0,
            n,
            &view.spin_words[..drive_words],
            0..cols,
            0..rbits,
            &mut scratch.row_out[..n],
        )
        .expect("in-bounds by layout");
        let nn = count_u64(n);
        ctx.cycles += nn;
        ctx.rwl_bits_fetched += nn;
        ctx.xnor_ops += nn * u64::from(r);
        ctx.adder_bit_ops += nn * (u64::from(r) + 2);
        ctx.decisions += nn;
        // Σ_k (decode(out_k) + [σ_k == Down]) in one bulk pass.
        let downs = nn - lanes::popcount(&view.spin_words[..drive_words]);
        let downs = i64::try_from(downs).expect("spin-down count bounded by degree");
        -(i64::from(tuple.field) + enc.decode_word_sum(&scratch.row_out[..n]) + downs)
    }

    fn phase1_cycles(&self, n: u64, _r: u32, _row_bits: u64) -> u64 {
        n.max(1)
    }

    fn idle_cycles(&self, _n: u64, _r: u32) -> u64 {
        2 // decision + adder shifted by a cycle each (Fig. 12)
    }

    fn xnor_queue_bits(&self, _n: u64, _r: u32) -> u64 {
        0
    }

    fn max_reuse(&self, _n: u64, r: u32) -> u64 {
        u64::from(r)
    }

    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64 {
        n * u64::from(r)
    }

    fn driven_bits_per_tuple(&self, n: u64, _r: u32, _row_bits: u64) -> u64 {
        n
    }
}

/// SACHI(n3): mixed stationary with reuse-aware compute (Fig. 13). ICs and
/// neighbor-spin copies are resident; the *target* spin drives the whole
/// row, and eqn. 5 recovers every product in parallel.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedStationary;

impl Stationarity for MixedStationary {
    fn kind(&self) -> DesignKind {
        DesignKind::N3
    }

    fn tile_requirements(&self, max_degree: usize, r: u32, row_bits: usize) -> (usize, usize) {
        let group = to_index(r) + 1;
        let per_row = (row_bits / group).max(1);
        let rows = max_degree.max(1).div_ceil(per_row);
        (rows, per_row * group)
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        let group = to_index(r) + 1;
        let per_row = (tile.cols() / group).max(1);
        // Layout: per neighbor, an (R+1)-bit group [J bits..., σ_j bit].
        for (k, (&j, &s)) in tuple
            .couplings
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .enumerate()
        {
            let row = k / per_row;
            let col = (k % per_row) * group;
            let mut bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            bits.push(s.bit());
            tile.write_slice(row, col, &bits)
                .expect("tile sized by tile_requirements");
        }
        // Phase 1: one cycle per occupied row; σ_i on the RWL, the whole
        // used width sensed.
        let rows = n.div_ceil(per_row);
        let mut acc = i64::from(tuple.field);
        let mut k = 0usize;
        for row in 0..rows {
            let in_row = per_row.min(n - row * per_row);
            let out = tile
                .compute_xnor_windowed(row, target.bit(), 0..in_row * group, 0..in_row * group)
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += count_u64(in_row * group);
            for g in 0..in_row {
                let bits = &out[g * group..g * group + to_index(r)];
                // Equality bit σ_j XNOR σ_i came out of the array with the
                // same pulse.
                let equal = out[g * group + to_index(r)];
                let sigma_j = if equal { target } else { target.flipped() };
                // eqn. 5 select: XNOR output if spins equal, XOR otherwise.
                let selected: Vec<bool> = if equal {
                    bits.to_vec()
                } else {
                    bits.iter().map(|b| !b).collect()
                };
                let mut v = enc.decode(&selected);
                if sigma_j == Spin::Down {
                    v += 1;
                }
                acc += v;
                ctx.adder_bit_ops += u64::from(r) + 2;
                ctx.decisions += 1;
                k += 1;
            }
        }
        debug_assert_eq!(k, n);
        -acc
    }

    fn compute_tuple_fast(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        scratch.invalidate();
        let rbits = to_index(r);
        let group = rbits + 1;
        let per_row = (tile.cols() / group).max(1);
        scratch.ensure_row_out(tile.cols().div_ceil(64));
        // Layout: per neighbor, an (R+1)-bit group [J bits..., σ_j bit]
        // packed into one word write.
        for (k, (&j, &s)) in tuple
            .couplings
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .enumerate()
        {
            let row = k / per_row;
            let col = (k % per_row) * group;
            let word = enc
                .encode_word(i64::from(j))
                .expect("coefficient fits the configured resolution")
                | (u64::from(s.bit()) << rbits);
            tile.write_bits_from_word(row, col, group, word)
                .expect("tile sized by tile_requirements");
        }
        // Phase 1: one cycle per occupied row; σ_i on the RWL, the whole
        // used width sensed into the packed row buffer, then each group's
        // product decoded by shift/add (eqn. 5 select on the word).
        let rows = n.div_ceil(per_row);
        let mut acc = i64::from(tuple.field);
        for row in 0..rows {
            let in_row = per_row.min(n - row * per_row);
            let width = in_row * group;
            tile.compute_xnor_packed(row, target.bit(), 0..width, 0..width, &mut scratch.row_out)
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += count_u64(width);
            for g in 0..in_row {
                let x = gather_bits(&scratch.row_out, g * group, rbits);
                // Equality bit σ_j XNOR σ_i came out of the array with the
                // same pulse.
                let equal = gather_bits(&scratch.row_out, g * group + rbits, 1) == 1;
                let sigma_j = if equal { target } else { target.flipped() };
                // eqn. 5 select: XNOR output if spins equal, XOR otherwise
                // (decode_word masks the complement back to R bits).
                let selected = if equal { x } else { !x };
                let mut v = enc.decode_word(selected);
                if sigma_j == Spin::Down {
                    v += 1;
                }
                acc += v;
                ctx.adder_bit_ops += u64::from(r) + 2;
                ctx.decisions += 1;
            }
        }
        -acc
    }

    fn compute_tuple_soa(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        view: TuplePlaneView<'_>,
        target: Spin,
        ctx: &mut ComputeContext,
        scratch: &mut ComputeScratch,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        scratch.invalidate();
        let rbits = to_index(r);
        let group = rbits + 1;
        let per_row = (tile.cols() / group).max(1);
        let row_words = tile.cols().div_ceil(64);
        scratch.ensure_row_out(row_words);
        scratch.ensure_spin_row(row_words);
        // Layout: the pre-maintained (R+1)-bit group words pack into whole
        // row images — one row-wide write per occupied row instead of one
        // sub-word write per neighbor. Same cells, same bits_written total
        // (groups fill contiguously from column 0).
        let rows = n.div_ceil(per_row);
        let mut acc = i64::from(tuple.field);
        for row in 0..rows {
            let in_row = per_row.min(n - row * per_row);
            let width = in_row * group;
            let wwords = width.div_ceil(64);
            for w in &mut scratch.packed_row[..wwords] {
                *w = 0;
            }
            for (g, &gw) in view.group_words[row * per_row..row * per_row + in_row]
                .iter()
                .enumerate()
            {
                let pos = g * group;
                let (wi, off) = (pos / 64, pos % 64);
                scratch.packed_row[wi] |= gw << off;
                if off + group > 64 {
                    // off > 0 here, so the shift below stays < 64.
                    scratch.packed_row[wi + 1] |= gw >> (64 - off);
                }
            }
            tile.write_row_words(row, &scratch.packed_row[..wwords], width)
                .expect("tile sized by tile_requirements");
            // Phase 1: σ_i on the RWL, the whole used width sensed, each
            // group's product decoded by shift/add (eqn. 5 select on the
            // word) — identical to the AoS fast path from here on.
            tile.compute_xnor_packed(row, target.bit(), 0..width, 0..width, &mut scratch.row_out)
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += count_u64(width);
            for g in 0..in_row {
                let x = gather_bits(&scratch.row_out, g * group, rbits);
                let equal = gather_bits(&scratch.row_out, g * group + rbits, 1) == 1;
                let sigma_j = if equal { target } else { target.flipped() };
                let selected = if equal { x } else { !x };
                let mut v = enc.decode_word(selected);
                if sigma_j == Spin::Down {
                    v += 1;
                }
                acc += v;
                ctx.adder_bit_ops += u64::from(r) + 2;
                ctx.decisions += 1;
            }
        }
        -acc
    }

    fn phase1_cycles(&self, n: u64, r: u32, row_bits: u64) -> u64 {
        n.max(1).div_ceil(n3_groups_per_row(r, row_bits))
    }

    fn idle_cycles(&self, _n: u64, _r: u32) -> u64 {
        2 // shift-add + decision pipeline skew (Fig. 13)
    }

    fn xnor_queue_bits(&self, _n: u64, _r: u32) -> u64 {
        0
    }

    fn max_reuse(&self, n: u64, r: u32) -> u64 {
        n * u64::from(r)
    }

    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64 {
        n * (u64::from(r) + 1)
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, row_bits: u64) -> u64 {
        n.max(1).div_ceil(n3_groups_per_row(r, row_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{TuplePlanes, TupleStore};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::hamiltonian::local_field;
    use sachi_ising::spin::SpinVector;

    fn check_design_matches_golden(kind: DesignKind, seed: u64) {
        let g = topology::king(4, 4, |i, j| ((i * 3 + j * 7) % 13) as i32 - 6).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let spins = SpinVector::random(16, &mut rng);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(g.bits_required()).unwrap();
        let design = stationarity(kind);
        let (rows, cols) = design.tile_requirements(g.max_degree(), enc.bits(), 800);
        let mut tile = SramTile::new(rows, cols);
        let mut ctx = ComputeContext::new();
        for i in 0..16 {
            let h = design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
            assert_eq!(h, local_field(&g, &spins, i), "{kind} mismatch at spin {i}");
        }
        assert!(ctx.cycles > 0);
        assert!(ctx.xnor_ops > 0);
    }

    #[test]
    fn all_designs_match_golden_local_field() {
        for kind in DesignKind::ALL {
            for seed in 0..3 {
                check_design_matches_golden(kind, seed);
            }
        }
    }

    #[test]
    fn fast_path_is_bit_identical_to_scalar_path() {
        for kind in DesignKind::ALL {
            for seed in 0..3u64 {
                let g = topology::king(4, 4, |i, j| ((i * 3 + j * 7) % 13) as i32 - 6).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let spins = SpinVector::random(16, &mut rng);
                let store = TupleStore::new(&g, &spins);
                let enc = MixedEncoding::new(g.bits_required()).unwrap();
                let design = stationarity(kind);
                let (rows, cols) = design.tile_requirements(g.max_degree(), enc.bits(), 800);
                let planes = TuplePlanes::new(&store, &enc).unwrap();
                let mut tile_s = SramTile::new(rows, cols);
                let mut tile_f = SramTile::new(rows, cols);
                let mut tile_o = SramTile::new(rows, cols);
                let mut ctx_s = ComputeContext::new();
                let mut ctx_f = ComputeContext::new();
                let mut ctx_o = ComputeContext::new();
                let mut scratch = ComputeScratch::new();
                let mut scratch_o = ComputeScratch::new();
                for i in 0..16 {
                    let hs = design.compute_tuple(
                        &mut tile_s,
                        &enc,
                        store.tuple(i),
                        spins.get(i),
                        &mut ctx_s,
                    );
                    let hf = design.compute_tuple_fast(
                        &mut tile_f,
                        &enc,
                        store.tuple(i),
                        spins.get(i),
                        &mut ctx_f,
                        &mut scratch,
                    );
                    let ho = design.compute_tuple_soa(
                        &mut tile_o,
                        &enc,
                        store.tuple(i),
                        planes.view(i),
                        spins.get(i),
                        &mut ctx_o,
                        &mut scratch_o,
                    );
                    assert_eq!(hs, hf, "{kind} H mismatch at spin {i}");
                    assert_eq!(hs, ho, "{kind} SoA H mismatch at spin {i}");
                    assert_eq!(ctx_s, ctx_f, "{kind} ComputeContext mismatch at spin {i}");
                    assert_eq!(
                        ctx_s, ctx_o,
                        "{kind} SoA ComputeContext mismatch at spin {i}"
                    );
                    assert_eq!(
                        tile_s.stats(),
                        tile_f.stats(),
                        "{kind} TileStats mismatch at spin {i}"
                    );
                    assert_eq!(
                        tile_f.stats(),
                        tile_o.stats(),
                        "{kind} SoA TileStats mismatch at spin {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn spin_stationary_fast_path_skips_redundant_spin_rewrites() {
        // Recomputing the same tuple against unchanged spins: the scalar
        // path rewrites the resident spin row every call; the fast path
        // writes it once and elides the rest (the spins are *stationary*).
        let g = topology::king(3, 3, |_, _| 2).unwrap();
        let spins = SpinVector::filled(9, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        for kind in [DesignKind::N1a, DesignKind::N1b] {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(8, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            let mut scratch = ComputeScratch::new();
            let h0 = design.compute_tuple_fast(
                &mut tile,
                &enc,
                store.tuple(4),
                spins.get(4),
                &mut ctx,
                &mut scratch,
            );
            let written_once = tile.stats().bits_written;
            let h1 = design.compute_tuple_fast(
                &mut tile,
                &enc,
                store.tuple(4),
                spins.get(4),
                &mut ctx,
                &mut scratch,
            );
            assert_eq!(h0, h1, "{kind}: H must not change on recompute");
            assert_eq!(
                tile.stats().bits_written,
                written_once,
                "{kind}: redundant spin-row rewrite was not elided"
            );
            assert_eq!(scratch.skipped_spin_writes, 1, "{kind}");
            // A different tuple re-arms the write.
            design.compute_tuple_fast(
                &mut tile,
                &enc,
                store.tuple(5),
                spins.get(5),
                &mut ctx,
                &mut scratch,
            );
            assert!(tile.stats().bits_written > written_once, "{kind}");
            assert_eq!(scratch.skipped_spin_writes, 1, "{kind}");
        }
    }

    #[test]
    fn designs_handle_fields_and_isolated_spins() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 5)
            .field(0, -3)
            .field(2, 7)
            .build()
            .unwrap();
        let spins = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(1, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            for i in 0..3 {
                let h =
                    design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
                assert_eq!(h, local_field(&g, &spins, i), "{kind} spin {i}");
            }
        }
    }

    #[test]
    fn reuse_ordering_matches_paper() {
        // n1a = n1b = 1 < n2 = R < n3 = N*R.
        let (n, r) = (8u64, 4u32);
        assert_eq!(stationarity(DesignKind::N1a).max_reuse(n, r), 1);
        assert_eq!(stationarity(DesignKind::N1b).max_reuse(n, r), 1);
        assert_eq!(stationarity(DesignKind::N2).max_reuse(n, r), 4);
        assert_eq!(stationarity(DesignKind::N3).max_reuse(n, r), 32);
    }

    #[test]
    fn measured_reuse_approaches_max_reuse() {
        let g = topology::king(4, 4, |_, _| 2).unwrap();
        let spins = SpinVector::filled(16, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(8, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            // Center spin: full 8-neighbor tuple.
            design.compute_tuple(&mut tile, &enc, store.tuple(5), spins.get(5), &mut ctx);
            let expected = design.max_reuse(store.tuple(5).degree() as u64, 4) as f64;
            let measured = ctx.reuse();
            assert!(
                (measured - expected).abs() / expected < 0.35,
                "{kind}: measured reuse {measured}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn schedule_formulas_match_figs_11_to_13() {
        let (n, r, row) = (8u64, 4u32, 800u64);
        // Phase-1 cycles: N*R, N*R, N, ceil(N / groups-per-row).
        assert_eq!(stationarity(DesignKind::N1a).phase1_cycles(n, r, row), 32);
        assert_eq!(stationarity(DesignKind::N1b).phase1_cycles(n, r, row), 32);
        assert_eq!(stationarity(DesignKind::N2).phase1_cycles(n, r, row), 8);
        assert_eq!(stationarity(DesignKind::N3).phase1_cycles(n, r, row), 1);
        // Idle: (R-1)*N + 1 vs R vs pipeline skew.
        assert_eq!(stationarity(DesignKind::N1a).idle_cycles(n, r), 25);
        assert_eq!(stationarity(DesignKind::N1b).idle_cycles(n, r), 4);
        assert!(stationarity(DesignKind::N2).idle_cycles(n, r) <= 2);
        // Queue: N*(R+1) vs R+1 vs none.
        assert_eq!(stationarity(DesignKind::N1a).xnor_queue_bits(n, r), 40);
        assert_eq!(stationarity(DesignKind::N1b).xnor_queue_bits(n, r), 5);
        assert_eq!(stationarity(DesignKind::N2).xnor_queue_bits(n, r), 0);
        assert_eq!(stationarity(DesignKind::N3).xnor_queue_bits(n, r), 0);
    }

    #[test]
    fn n3_splits_wide_tuples_across_rows() {
        // TSP-like: N = 999, R = 4, 800-bit rows -> 160 groups per row ->
        // 7 rows.
        let d = stationarity(DesignKind::N3);
        assert_eq!(d.phase1_cycles(999, 4, 800), 7);
        let (rows, cols) = d.tile_requirements(999, 4, 800);
        assert_eq!(rows, 7);
        assert!(cols <= 800);
    }

    #[test]
    fn n1_designs_pay_redundant_discharges() {
        // Sensing one column while the whole row discharges is the Fig. 5c
        // energy waste; n3 senses everything it discharges.
        let g = topology::king(3, 3, |_, _| 3).unwrap();
        let spins = SpinVector::filled(9, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        let mut redundant = std::collections::BTreeMap::new();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(8, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            design.compute_tuple(&mut tile, &enc, store.tuple(4), spins.get(4), &mut ctx);
            redundant.insert(kind, tile.stats().redundant_discharges);
        }
        assert!(redundant[&DesignKind::N1a] > 0);
        assert!(redundant[&DesignKind::N1b] > 0);
        assert_eq!(redundant[&DesignKind::N3], 0);
        assert!(redundant[&DesignKind::N1a] > redundant[&DesignKind::N2]);
    }

    #[test]
    fn footprints_order_n1_below_n2_below_n3() {
        for kind in DesignKind::ALL {
            let d = stationarity(kind);
            assert_eq!(d.kind(), kind);
        }
        let (n, r) = (8u64, 4u32);
        let f = |k| stationarity(k).resident_bits_per_tuple(n, r);
        assert!(f(DesignKind::N1a) < f(DesignKind::N2));
        assert!(f(DesignKind::N2) < f(DesignKind::N3));
        let d = |k| stationarity(k).driven_bits_per_tuple(n, r, 800);
        assert!(d(DesignKind::N3) < d(DesignKind::N2));
        assert!(d(DesignKind::N2) < d(DesignKind::N1a));
    }

    proptest! {
        #[test]
        fn designs_agree_with_each_other(seed in 0u64..50) {
            let g = topology::complete(6, |i, j| ((i * 5 + j * 11 + 3) % 15) as i32 - 7).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let spins = SpinVector::random(6, &mut rng);
            let store = TupleStore::new(&g, &spins);
            let enc = MixedEncoding::new(g.bits_required()).unwrap();
            for i in 0..6 {
                let golden = local_field(&g, &spins, i);
                for kind in DesignKind::ALL {
                    let design = stationarity(kind);
                    let (rows, cols) = design.tile_requirements(5, enc.bits(), 800);
                    let mut tile = SramTile::new(rows, cols);
                    let mut ctx = ComputeContext::new();
                    let h = design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
                    prop_assert_eq!(h, golden);
                }
            }
        }
    }
}
