//! The four stationarity designs of Sec. IV.D (Figs. 11–13).
//!
//! Each design answers the same question — "how does a tuple's `H_σ` flow
//! through the compute array?" — with a different choice of what stays
//! resident in the SRAM (*stationary*) and what is driven on the read
//! word-lines:
//!
//! | design | resident in array | driven on RWL | phase-1 cycles | reuse |
//! |---|---|---|---|---|
//! | n1a | neighbor spins | J bits, bit-major | N·R | 1 |
//! | n1b | neighbor spins | J bits, IC-major  | N·R | 1 |
//! | n2  | ICs (one per row) | neighbor spins | N | R |
//! | n3  | ICs + neighbor spins | target spin σ_i | ⌈N/(row capacity)⌉ | N·R |
//!
//! The `compute_tuple` implementations are *functional*: they lay the
//! stationary data into a real [`SramTile`], pulse the word-lines, and
//! assemble `H_σ` from the sensed discharge pattern — so every design is
//! checked bit-for-bit against the golden local field. The closed-form
//! schedule methods (`phase1_cycles`, `idle_cycles`, `xnor_queue_bits`,
//! `max_reuse`, footprints) feed the analytic performance model of
//! [`crate::perf`].

use crate::config::DesignKind;
use crate::encoding::MixedEncoding;
use crate::tuple::SpinTuple;
use sachi_ising::spin::Spin;
use sachi_mem::sram::SramTile;
use sachi_mem::units::convert::{count_u64, ratio_u64, to_index};

/// Per-solve counters a design accumulates while computing tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ComputeContext {
    /// Compute-array cycles spent in phase 1.
    pub cycles: u64,
    /// Bits fetched from the storage array onto the RWLs (the data-movement
    /// traffic whose reuse the paper optimizes).
    pub rwl_bits_fetched: u64,
    /// Useful in-memory XNOR bit computations performed.
    pub xnor_ops: u64,
    /// Near-memory full-adder bit operations.
    pub adder_bit_ops: u64,
    /// XNOR-vs-XNOR+1 (and XOR) decisions taken.
    pub decisions: u64,
    /// High-water mark of the XNOR queue, in bits.
    pub queue_peak_bits: u64,
}

impl ComputeContext {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        ComputeContext::default()
    }

    /// Reuse achieved so far: useful XNOR computes per RWL bit fetched.
    /// BRIM and Ising-CIM sit at 1.0 by construction; SACHI(n3) approaches
    /// `N·R`.
    pub fn reuse(&self) -> f64 {
        if self.rwl_bits_fetched == 0 {
            return 0.0;
        }
        ratio_u64(self.xnor_ops, self.rwl_bits_fetched)
    }

    fn note_queue(&mut self, bits: u64) {
        self.queue_peak_bits = self.queue_peak_bits.max(bits);
    }
}

/// A stationarity design: functional tuple compute plus its closed-form
/// schedule. This trait is sealed by construction — the four designs are
/// fixed by the paper; obtain them via [`stationarity`].
pub trait Stationarity {
    /// Which design this is.
    fn kind(&self) -> DesignKind;

    /// Scratch-tile dimensions needed to compute a tuple of `max_degree`
    /// neighbors at resolution `r` with physical rows of `row_bits`
    /// columns.
    fn tile_requirements(&self, max_degree: usize, r: u32, row_bits: usize) -> (usize, usize);

    /// Lays the tuple into `tile`, pulses the word-lines, and returns
    /// `H_σ` assembled from the sensed XNOR outputs. Counters accumulate
    /// into `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if the tile is smaller than
    /// [`Stationarity::tile_requirements`] demands or a coefficient does
    /// not fit in the encoding.
    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64;

    /// Phase-1 (in-memory compute) cycles for a tuple of `n` neighbors.
    fn phase1_cycles(&self, n: u64, r: u32, row_bits: u64) -> u64;

    /// Pipeline-fill idle cycles before phases 3–5 first activate
    /// (Fig. 11f): `(R-1)·N + 1` for n1a, `R` for n1b, a 1–2 cycle skew
    /// for n2/n3.
    fn idle_cycles(&self, n: u64, r: u32) -> u64;

    /// Minimum XNOR-queue capacity in bits (phase 2): `N·(R+1)` for n1a,
    /// `R+1` for n1b, zero for n2/n3.
    fn xnor_queue_bits(&self, n: u64, r: u32) -> u64;

    /// Maximum reuse: 1, 1, `R`, `N·R`.
    fn max_reuse(&self, n: u64, r: u32) -> u64;

    /// Compute-array bits a tuple keeps resident.
    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64;

    /// Storage-array bits driven onto RWLs per `H_σ` compute.
    fn driven_bits_per_tuple(&self, n: u64, r: u32, row_bits: u64) -> u64;
}

/// Returns the implementation of a design.
pub fn stationarity(kind: DesignKind) -> &'static dyn Stationarity {
    match kind {
        DesignKind::N1a => &SpinStationaryBitMajor,
        DesignKind::N1b => &SpinStationaryIcMajor,
        DesignKind::N2 => &IcStationary,
        DesignKind::N3 => &MixedStationary,
    }
}

/// How many (R+1)-bit neighbor groups fit in one n3 row.
fn n3_groups_per_row(r: u32, row_bits: u64) -> u64 {
    (row_bits / (u64::from(r) + 1)).max(1)
}

/// Shared finale for the n1 designs: assemble products from queued XNOR
/// bits, then fold in the field and negate (phases 3–5).
fn finish_from_products(
    products: impl Iterator<Item = i64>,
    field: i32,
    r: u32,
    ctx: &mut ComputeContext,
) -> i64 {
    let mut acc = i64::from(field); // full adder initialized to h (phase 4)
    for p in products {
        acc += p;
        ctx.adder_bit_ops += u64::from(r) + 2;
        ctx.decisions += 1;
    }
    -acc // phase 5 negation: H_σ = -(Σ J σ + h)
}

fn layout_spins(tile: &mut SramTile, tuple: &SpinTuple) {
    let bits: Vec<bool> = tuple.neighbor_spins.iter().map(|s| s.bit()).collect();
    tile.write_row(0, &bits)
        .expect("tile sized by tile_requirements");
}

/// SACHI(n1a): spin stationary, bit-major XNOR order (Fig. 11a.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinStationaryBitMajor;

impl Stationarity for SpinStationaryBitMajor {
    fn kind(&self) -> DesignKind {
        DesignKind::N1a
    }

    fn tile_requirements(&self, max_degree: usize, _r: u32, _row_bits: usize) -> (usize, usize) {
        (1, max_degree.max(1))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        layout_spins(tile, tuple);
        // Phase 1: bit-major — XNOR the r-th bit of every IC before moving
        // to bit r+1. Each cycle drives one J bit and senses one column.
        let encoded: Vec<Vec<bool>> = tuple
            .couplings
            .iter()
            .map(|&j| {
                enc.encode(i64::from(j))
                    .expect("coefficient fits the configured resolution")
            })
            .collect();
        let mut queue = vec![vec![false; to_index(r)]; n];
        for b in 0..to_index(r) {
            for (k, bits) in encoded.iter().enumerate() {
                let out = tile
                    .compute_xnor_bit(0, bits[b], 0..n, k)
                    .expect("in-bounds by layout");
                queue[k][b] = out;
                ctx.cycles += 1;
                ctx.rwl_bits_fetched += 1;
                ctx.xnor_ops += 1;
            }
        }
        // The queue must hold every neighbor's partial bits at once
        // (minimum size N*(R+1), Sec. IV.D.1).
        ctx.note_queue(count_u64(n) * (u64::from(r) + 1));
        // Phases 3-5.
        let products = queue
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .map(|(bits, &s)| {
                let mut v = enc.decode(bits);
                if s == Spin::Down {
                    v += 1;
                }
                v
            });
        finish_from_products(products, tuple.field, r, ctx)
    }

    fn phase1_cycles(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }

    fn idle_cycles(&self, n: u64, r: u32) -> u64 {
        if n == 0 {
            return 0;
        }
        (u64::from(r) - 1) * n + 1
    }

    fn xnor_queue_bits(&self, n: u64, r: u32) -> u64 {
        n * (u64::from(r) + 1)
    }

    fn max_reuse(&self, _n: u64, _r: u32) -> u64 {
        1
    }

    fn resident_bits_per_tuple(&self, n: u64, _r: u32) -> u64 {
        n
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }
}

/// SACHI(n1b): spin stationary, IC-major XNOR order (Fig. 11a.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinStationaryIcMajor;

impl Stationarity for SpinStationaryIcMajor {
    fn kind(&self) -> DesignKind {
        DesignKind::N1b
    }

    fn tile_requirements(&self, max_degree: usize, _r: u32, _row_bits: usize) -> (usize, usize) {
        (1, max_degree.max(1))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        layout_spins(tile, tuple);
        // Phase 1: IC-major — all bits of one J before the next J, so the
        // queue holds a single (R+1)-bit entry and phase 3 starts after R
        // cycles.
        let mut acc = i64::from(tuple.field);
        let mut queue_entry = vec![false; to_index(r)];
        for (k, &j) in tuple.couplings.iter().enumerate() {
            let bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            for (b, &jbit) in bits.iter().enumerate() {
                queue_entry[b] = tile
                    .compute_xnor_bit(0, jbit, 0..n, k)
                    .expect("in-bounds by layout");
                ctx.cycles += 1;
                ctx.rwl_bits_fetched += 1;
                ctx.xnor_ops += 1;
                ctx.note_queue(count_u64(b) + 1);
            }
            ctx.note_queue(u64::from(r) + 1);
            let mut v = enc.decode(&queue_entry);
            if tuple.neighbor_spins[k] == Spin::Down {
                v += 1;
            }
            acc += v;
            ctx.adder_bit_ops += u64::from(r) + 2;
            ctx.decisions += 1;
        }
        -acc
    }

    fn phase1_cycles(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }

    fn idle_cycles(&self, _n: u64, r: u32) -> u64 {
        u64::from(r)
    }

    fn xnor_queue_bits(&self, _n: u64, r: u32) -> u64 {
        u64::from(r) + 1
    }

    fn max_reuse(&self, _n: u64, _r: u32) -> u64 {
        1
    }

    fn resident_bits_per_tuple(&self, n: u64, _r: u32) -> u64 {
        n
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, _row_bits: u64) -> u64 {
        n * u64::from(r)
    }
}

/// SACHI(n2): IC stationary (Fig. 12). One row per IC; the neighbor spin
/// drives the row's RWL pair and all R columns are sensed in one cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcStationary;

impl Stationarity for IcStationary {
    fn kind(&self) -> DesignKind {
        DesignKind::N2
    }

    fn tile_requirements(&self, max_degree: usize, r: u32, _row_bits: usize) -> (usize, usize) {
        (max_degree.max(1), to_index(r))
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        _target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        // Layout: row k holds encode(J_ik).
        for (k, &j) in tuple.couplings.iter().enumerate() {
            let bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            tile.write_row(k, &bits)
                .expect("tile sized by tile_requirements");
        }
        // Phase 1: one neighbor per cycle, R columns sensed at once.
        let mut acc = i64::from(tuple.field);
        for (k, &s) in tuple.neighbor_spins.iter().enumerate() {
            let out = tile
                .compute_xnor(k, s.bit(), 0..to_index(r))
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += u64::from(r);
            let mut v = enc.decode(&out);
            if s == Spin::Down {
                v += 1;
            }
            acc += v;
            ctx.adder_bit_ops += u64::from(r) + 2;
            ctx.decisions += 1;
        }
        -acc
    }

    fn phase1_cycles(&self, n: u64, _r: u32, _row_bits: u64) -> u64 {
        n.max(1)
    }

    fn idle_cycles(&self, _n: u64, _r: u32) -> u64 {
        2 // decision + adder shifted by a cycle each (Fig. 12)
    }

    fn xnor_queue_bits(&self, _n: u64, _r: u32) -> u64 {
        0
    }

    fn max_reuse(&self, _n: u64, r: u32) -> u64 {
        u64::from(r)
    }

    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64 {
        n * u64::from(r)
    }

    fn driven_bits_per_tuple(&self, n: u64, _r: u32, _row_bits: u64) -> u64 {
        n
    }
}

/// SACHI(n3): mixed stationary with reuse-aware compute (Fig. 13). ICs and
/// neighbor-spin copies are resident; the *target* spin drives the whole
/// row, and eqn. 5 recovers every product in parallel.
#[derive(Debug, Clone, Copy, Default)]
pub struct MixedStationary;

impl Stationarity for MixedStationary {
    fn kind(&self) -> DesignKind {
        DesignKind::N3
    }

    fn tile_requirements(&self, max_degree: usize, r: u32, row_bits: usize) -> (usize, usize) {
        let group = to_index(r) + 1;
        let per_row = (row_bits / group).max(1);
        let rows = max_degree.max(1).div_ceil(per_row);
        (rows, per_row * group)
    }

    fn compute_tuple(
        &self,
        tile: &mut SramTile,
        enc: &MixedEncoding,
        tuple: &SpinTuple,
        target: Spin,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        let r = enc.bits();
        if n == 0 {
            return -(i64::from(tuple.field));
        }
        let group = to_index(r) + 1;
        let per_row = (tile.cols() / group).max(1);
        // Layout: per neighbor, an (R+1)-bit group [J bits..., σ_j bit].
        for (k, (&j, &s)) in tuple
            .couplings
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .enumerate()
        {
            let row = k / per_row;
            let col = (k % per_row) * group;
            let mut bits = enc
                .encode(i64::from(j))
                .expect("coefficient fits the configured resolution");
            bits.push(s.bit());
            tile.write_slice(row, col, &bits)
                .expect("tile sized by tile_requirements");
        }
        // Phase 1: one cycle per occupied row; σ_i on the RWL, the whole
        // used width sensed.
        let rows = n.div_ceil(per_row);
        let mut acc = i64::from(tuple.field);
        let mut k = 0usize;
        for row in 0..rows {
            let in_row = per_row.min(n - row * per_row);
            let out = tile
                .compute_xnor_windowed(row, target.bit(), 0..in_row * group, 0..in_row * group)
                .expect("in-bounds by layout");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += count_u64(in_row * group);
            for g in 0..in_row {
                let bits = &out[g * group..g * group + to_index(r)];
                // Equality bit σ_j XNOR σ_i came out of the array with the
                // same pulse.
                let equal = out[g * group + to_index(r)];
                let sigma_j = if equal { target } else { target.flipped() };
                // eqn. 5 select: XNOR output if spins equal, XOR otherwise.
                let selected: Vec<bool> = if equal {
                    bits.to_vec()
                } else {
                    bits.iter().map(|b| !b).collect()
                };
                let mut v = enc.decode(&selected);
                if sigma_j == Spin::Down {
                    v += 1;
                }
                acc += v;
                ctx.adder_bit_ops += u64::from(r) + 2;
                ctx.decisions += 1;
                k += 1;
            }
        }
        debug_assert_eq!(k, n);
        -acc
    }

    fn phase1_cycles(&self, n: u64, r: u32, row_bits: u64) -> u64 {
        n.max(1).div_ceil(n3_groups_per_row(r, row_bits))
    }

    fn idle_cycles(&self, _n: u64, _r: u32) -> u64 {
        2 // shift-add + decision pipeline skew (Fig. 13)
    }

    fn xnor_queue_bits(&self, _n: u64, _r: u32) -> u64 {
        0
    }

    fn max_reuse(&self, n: u64, r: u32) -> u64 {
        n * u64::from(r)
    }

    fn resident_bits_per_tuple(&self, n: u64, r: u32) -> u64 {
        n * (u64::from(r) + 1)
    }

    fn driven_bits_per_tuple(&self, n: u64, r: u32, row_bits: u64) -> u64 {
        n.max(1).div_ceil(n3_groups_per_row(r, row_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleStore;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::{topology, GraphBuilder};
    use sachi_ising::hamiltonian::local_field;
    use sachi_ising::spin::SpinVector;

    fn check_design_matches_golden(kind: DesignKind, seed: u64) {
        let g = topology::king(4, 4, |i, j| ((i * 3 + j * 7) % 13) as i32 - 6).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let spins = SpinVector::random(16, &mut rng);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(g.bits_required()).unwrap();
        let design = stationarity(kind);
        let (rows, cols) = design.tile_requirements(g.max_degree(), enc.bits(), 800);
        let mut tile = SramTile::new(rows, cols);
        let mut ctx = ComputeContext::new();
        for i in 0..16 {
            let h = design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
            assert_eq!(h, local_field(&g, &spins, i), "{kind} mismatch at spin {i}");
        }
        assert!(ctx.cycles > 0);
        assert!(ctx.xnor_ops > 0);
    }

    #[test]
    fn all_designs_match_golden_local_field() {
        for kind in DesignKind::ALL {
            for seed in 0..3 {
                check_design_matches_golden(kind, seed);
            }
        }
    }

    #[test]
    fn designs_handle_fields_and_isolated_spins() {
        let g = GraphBuilder::new(3)
            .edge(0, 1, 5)
            .field(0, -3)
            .field(2, 7)
            .build()
            .unwrap();
        let spins = SpinVector::from_spins(&[Spin::Up, Spin::Down, Spin::Up]);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(1, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            for i in 0..3 {
                let h =
                    design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
                assert_eq!(h, local_field(&g, &spins, i), "{kind} spin {i}");
            }
        }
    }

    #[test]
    fn reuse_ordering_matches_paper() {
        // n1a = n1b = 1 < n2 = R < n3 = N*R.
        let (n, r) = (8u64, 4u32);
        assert_eq!(stationarity(DesignKind::N1a).max_reuse(n, r), 1);
        assert_eq!(stationarity(DesignKind::N1b).max_reuse(n, r), 1);
        assert_eq!(stationarity(DesignKind::N2).max_reuse(n, r), 4);
        assert_eq!(stationarity(DesignKind::N3).max_reuse(n, r), 32);
    }

    #[test]
    fn measured_reuse_approaches_max_reuse() {
        let g = topology::king(4, 4, |_, _| 2).unwrap();
        let spins = SpinVector::filled(16, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(8, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            // Center spin: full 8-neighbor tuple.
            design.compute_tuple(&mut tile, &enc, store.tuple(5), spins.get(5), &mut ctx);
            let expected = design.max_reuse(store.tuple(5).degree() as u64, 4) as f64;
            let measured = ctx.reuse();
            assert!(
                (measured - expected).abs() / expected < 0.35,
                "{kind}: measured reuse {measured}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn schedule_formulas_match_figs_11_to_13() {
        let (n, r, row) = (8u64, 4u32, 800u64);
        // Phase-1 cycles: N*R, N*R, N, ceil(N / groups-per-row).
        assert_eq!(stationarity(DesignKind::N1a).phase1_cycles(n, r, row), 32);
        assert_eq!(stationarity(DesignKind::N1b).phase1_cycles(n, r, row), 32);
        assert_eq!(stationarity(DesignKind::N2).phase1_cycles(n, r, row), 8);
        assert_eq!(stationarity(DesignKind::N3).phase1_cycles(n, r, row), 1);
        // Idle: (R-1)*N + 1 vs R vs pipeline skew.
        assert_eq!(stationarity(DesignKind::N1a).idle_cycles(n, r), 25);
        assert_eq!(stationarity(DesignKind::N1b).idle_cycles(n, r), 4);
        assert!(stationarity(DesignKind::N2).idle_cycles(n, r) <= 2);
        // Queue: N*(R+1) vs R+1 vs none.
        assert_eq!(stationarity(DesignKind::N1a).xnor_queue_bits(n, r), 40);
        assert_eq!(stationarity(DesignKind::N1b).xnor_queue_bits(n, r), 5);
        assert_eq!(stationarity(DesignKind::N2).xnor_queue_bits(n, r), 0);
        assert_eq!(stationarity(DesignKind::N3).xnor_queue_bits(n, r), 0);
    }

    #[test]
    fn n3_splits_wide_tuples_across_rows() {
        // TSP-like: N = 999, R = 4, 800-bit rows -> 160 groups per row ->
        // 7 rows.
        let d = stationarity(DesignKind::N3);
        assert_eq!(d.phase1_cycles(999, 4, 800), 7);
        let (rows, cols) = d.tile_requirements(999, 4, 800);
        assert_eq!(rows, 7);
        assert!(cols <= 800);
    }

    #[test]
    fn n1_designs_pay_redundant_discharges() {
        // Sensing one column while the whole row discharges is the Fig. 5c
        // energy waste; n3 senses everything it discharges.
        let g = topology::king(3, 3, |_, _| 3).unwrap();
        let spins = SpinVector::filled(9, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let enc = MixedEncoding::new(4).unwrap();
        let mut redundant = std::collections::HashMap::new();
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            let (rows, cols) = design.tile_requirements(8, 4, 800);
            let mut tile = SramTile::new(rows, cols);
            let mut ctx = ComputeContext::new();
            design.compute_tuple(&mut tile, &enc, store.tuple(4), spins.get(4), &mut ctx);
            redundant.insert(kind, tile.stats().redundant_discharges);
        }
        assert!(redundant[&DesignKind::N1a] > 0);
        assert!(redundant[&DesignKind::N1b] > 0);
        assert_eq!(redundant[&DesignKind::N3], 0);
        assert!(redundant[&DesignKind::N1a] > redundant[&DesignKind::N2]);
    }

    #[test]
    fn footprints_order_n1_below_n2_below_n3() {
        for kind in DesignKind::ALL {
            let d = stationarity(kind);
            assert_eq!(d.kind(), kind);
        }
        let (n, r) = (8u64, 4u32);
        let f = |k| stationarity(k).resident_bits_per_tuple(n, r);
        assert!(f(DesignKind::N1a) < f(DesignKind::N2));
        assert!(f(DesignKind::N2) < f(DesignKind::N3));
        let d = |k| stationarity(k).driven_bits_per_tuple(n, r, 800);
        assert!(d(DesignKind::N3) < d(DesignKind::N2));
        assert!(d(DesignKind::N2) < d(DesignKind::N1a));
    }

    proptest! {
        #[test]
        fn designs_agree_with_each_other(seed in 0u64..50) {
            let g = topology::complete(6, |i, j| ((i * 5 + j * 11 + 3) % 15) as i32 - 7).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let spins = SpinVector::random(6, &mut rng);
            let store = TupleStore::new(&g, &spins);
            let enc = MixedEncoding::new(g.bits_required()).unwrap();
            for i in 0..6 {
                let golden = local_field(&g, &spins, i);
                for kind in DesignKind::ALL {
                    let design = stationarity(kind);
                    let (rows, cols) = design.tile_requirements(5, enc.bits(), 800);
                    let mut tile = SramTile::new(rows, cols);
                    let mut ctx = ComputeContext::new();
                    let h = design.compute_tuple(&mut tile, &enc, store.tuple(i), spins.get(i), &mut ctx);
                    prop_assert_eq!(h, golden);
                }
            }
        }
    }
}
