//! Physically-resident tiled compute array for the mixed-stationary
//! design.
//!
//! [`crate::machine::SachiMachine`] computes through a *scratch* tile: it
//! re-lays each tuple before computing it and bills residency traffic
//! analytically. This module is the fully physical alternative for
//! SACHI(n3): a [`TiledComputeArray`] with one [`SramTile`] per paper
//! tile, tuples laid out **once per round** at real bit addresses, spin
//! updates written **into the resident bitcells** through the Fig. 8b
//! path, and every write observable in the tiles' own counters.
//!
//! [`ResidentN3Machine`] runs the shared iterative protocol on top of it
//! and must match the golden trajectory exactly — which it can only do
//! because the update path keeps resident `σ_j` copies fresh, the very
//! mechanism the paper's storage-array-based update exists to provide.

use crate::config::SachiConfig;
use crate::designs::ComputeContext;
use crate::encoding::MixedEncoding;
use crate::machine::RunReport;
use crate::tuple::{SpinTuple, TupleStore};
use sachi_ising::anneal::Annealer;
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::energy;
use sachi_ising::solver::{decide_update, IterativeSolver, SolveOptions, SolveResult};
use sachi_ising::spin::{Spin, SpinVector};
use sachi_mem::cache::CacheGeometry;
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::sram::{gather_bits, SramTile};
use sachi_mem::units::convert::{count_u64, to_index};
use sachi_mem::units::{Bits, Cycles};
use std::fmt;

/// Where a resident tuple lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Tile index.
    pub tile: u16,
    /// First row of the tuple's rows.
    pub base_row: u32,
    /// Rows occupied.
    pub rows: u32,
}

/// Error when a tuple cannot be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// No tile has enough free rows (round is full) — start a new round.
    RoundFull,
    /// The tuple needs more rows than a whole tile has.
    TupleTooLarge {
        /// Rows the tuple needs.
        needed: u32,
        /// Rows one tile has.
        available: u32,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::RoundFull => write!(f, "compute array full for this round"),
            PlacementError::TupleTooLarge { needed, available } => {
                write!(
                    f,
                    "tuple needs {needed} rows but a tile has only {available}"
                )
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The physical compute array: n3 layout, one `(R+1)`-bit group per
/// neighbor (J bits then the `σ_j` copy).
#[derive(Debug)]
pub struct TiledComputeArray {
    tiles: Vec<SramTile>,
    next_row: Vec<usize>,
    rows_per_tile: usize,
    groups_per_row: usize,
    group_bits: usize,
    resolution: u32,
    // Reusable sense buffer for the packed compute kernel — sized once
    // for a full row so the hot loop never allocates.
    out_buf: Vec<u64>,
}

impl TiledComputeArray {
    /// Creates an empty array for the given geometry and IC resolution.
    ///
    /// # Panics
    ///
    /// Panics if a row cannot hold even one `(R+1)`-bit group.
    pub fn new(geometry: CacheGeometry, resolution: u32) -> Self {
        let group_bits = to_index(resolution) + 1;
        let groups_per_row = geometry.row_bits() / group_bits;
        assert!(
            groups_per_row > 0,
            "row of {} bits cannot hold an (R+1)-bit group",
            geometry.row_bits()
        );
        TiledComputeArray {
            tiles: (0..geometry.tiles())
                .map(|_| SramTile::new(geometry.rows_per_tile(), geometry.row_bits()))
                .collect(),
            next_row: vec![0; geometry.tiles()],
            rows_per_tile: geometry.rows_per_tile(),
            groups_per_row,
            group_bits,
            resolution,
            out_buf: vec![0u64; geometry.row_bits().div_ceil(64).max(1)],
        }
    }

    /// Rows a tuple of `degree` neighbors occupies.
    pub fn rows_for_degree(&self, degree: usize) -> u32 {
        u32::try_from(degree.max(1).div_ceil(self.groups_per_row))
            .expect("row need fits u32: degree is bounded by the spin count")
    }

    /// Clears residency for the next round (data is overwritten lazily;
    /// only the cursors reset — matching hardware, which does not erase).
    pub fn clear(&mut self) {
        self.next_row.iter_mut().for_each(|r| *r = 0);
    }

    /// Free rows remaining across tiles.
    pub fn free_rows(&self) -> usize {
        self.next_row.iter().map(|&r| self.rows_per_tile - r).sum()
    }

    /// Reserves rows for a tuple without writing anything — used for
    /// round planning (the chunk discovery must mirror the real placement
    /// policy exactly, minus the bitcell traffic).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if no tile can take the tuple.
    pub fn plan_tuple(&mut self, degree: usize) -> Result<Placement, PlacementError> {
        let rows = to_index(self.rows_for_degree(degree));
        if rows > self.rows_per_tile {
            return Err(PlacementError::TupleTooLarge {
                needed: u32::try_from(rows).expect("row count fits u32 by construction"),
                available: u32::try_from(self.rows_per_tile).expect("geometry rows fit u32"),
            });
        }
        // Least-loaded tile balances rows across tiles (the n1b-style
        // interleaving the paper recommends).
        let tile_idx = (0..self.tiles.len())
            .filter(|&t| self.next_row[t] + rows <= self.rows_per_tile)
            .min_by_key(|&t| self.next_row[t])
            .ok_or(PlacementError::RoundFull)?;
        let base_row = self.next_row[tile_idx];
        self.next_row[tile_idx] += rows;
        Ok(Placement {
            tile: u16::try_from(tile_idx)
                .expect("tile count fits u16 (geometry has at most thousands of tiles)"),
            base_row: u32::try_from(base_row).expect("row index fits u32"),
            rows: u32::try_from(rows).expect("row count fits u32 by construction"),
        })
    }

    /// Places and writes a tuple's layout (J bits + `σ_j` copies), booking
    /// real writes in the owning tile.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] if no tile can take the tuple.
    ///
    /// # Panics
    ///
    /// Panics if a coefficient does not fit the configured resolution.
    pub fn load_tuple(
        &mut self,
        tuple: &SpinTuple,
        enc: &MixedEncoding,
    ) -> Result<Placement, PlacementError> {
        let placement = self.plan_tuple(tuple.degree())?;
        let (tile_idx, base_row) = (usize::from(placement.tile), to_index(placement.base_row));
        let tile = &mut self.tiles[tile_idx];
        let rbits = to_index(self.resolution);
        for (k, (&j, &s)) in tuple
            .couplings
            .iter()
            .zip(tuple.neighbor_spins.iter())
            .enumerate()
        {
            let row = base_row + k / self.groups_per_row;
            let col = (k % self.groups_per_row) * self.group_bits;
            let word = enc
                .encode_word(i64::from(j))
                .expect("coefficient fits the configured resolution")
                | (u64::from(s.bit()) << rbits);
            tile.write_bits_from_word(row, col, self.group_bits, word)
                .expect("placement validated");
        }
        Ok(placement)
    }

    /// Refreshes the resident `σ_j` copy at `slot` of a placed tuple —
    /// the compute-array end of the Fig. 8b update path. Returns the bits
    /// written (1).
    ///
    /// # Panics
    ///
    /// Panics if the slot lies outside the placement.
    pub fn update_spin_copy(&mut self, placement: Placement, slot: usize, new: Spin) -> u64 {
        let row = to_index(placement.base_row) + slot / self.groups_per_row;
        let col = (slot % self.groups_per_row) * self.group_bits + to_index(self.resolution);
        assert!(
            row < to_index(placement.base_row) + to_index(placement.rows),
            "slot outside placement"
        );
        self.tiles[usize::from(placement.tile)]
            .write_bit(row, col, new.bit())
            .expect("placement validated at load");
        1
    }

    /// Computes `H_σ` for a resident tuple by pulsing its rows with the
    /// target spin (eqn. 5 reuse-aware compute on live bitcells).
    ///
    /// # Panics
    ///
    /// Panics if the placement does not match the tuple's degree.
    pub fn compute_h(
        &mut self,
        placement: Placement,
        tuple: &SpinTuple,
        target: Spin,
        enc: &MixedEncoding,
        ctx: &mut ComputeContext,
    ) -> i64 {
        let n = tuple.degree();
        if n == 0 {
            return -i64::from(tuple.field);
        }
        assert_eq!(
            self.rows_for_degree(n),
            placement.rows,
            "placement/degree mismatch"
        );
        // Split borrow: the owning tile and the reusable sense buffer are
        // disjoint fields.
        let TiledComputeArray { tiles, out_buf, .. } = self;
        let tile = &mut tiles[usize::from(placement.tile)];
        let r = to_index(enc.bits());
        let mut acc = i64::from(tuple.field);
        let mut k = 0usize;
        for row_off in 0..to_index(placement.rows) {
            let in_row = self.groups_per_row.min(n - row_off * self.groups_per_row);
            let row = to_index(placement.base_row) + row_off;
            let width = in_row * self.group_bits;
            tile.compute_xnor_packed(row, target.bit(), 0..width, 0..width, out_buf)
                .expect("placement validated");
            ctx.cycles += 1;
            ctx.rwl_bits_fetched += 1;
            ctx.xnor_ops += count_u64(width);
            for g in 0..in_row {
                let x = gather_bits(out_buf, g * self.group_bits, r);
                let equal = gather_bits(out_buf, g * self.group_bits + r, 1) == 1;
                let sigma_j = if equal { target } else { target.flipped() };
                let selected = if equal { x } else { !x };
                let mut v = enc.decode_word(selected);
                if sigma_j == Spin::Down {
                    v += 1;
                }
                acc += v;
                ctx.adder_bit_ops += count_u64(r) + 2;
                ctx.decisions += 1;
                k += 1;
            }
        }
        debug_assert_eq!(k, n);
        -acc
    }

    /// Aggregated tile statistics.
    pub fn merged_stats(&self) -> sachi_mem::sram::TileStats {
        let mut stats = sachi_mem::sram::TileStats::default();
        for tile in &self.tiles {
            stats.merge(tile.stats());
        }
        stats
    }
}

/// The fully physical SACHI(n3) machine.
#[derive(Debug, Clone)]
pub struct ResidentN3Machine {
    config: SachiConfig,
}

impl ResidentN3Machine {
    /// Creates the machine. The design is fixed to mixed-stationary;
    /// `config.design` is ignored.
    pub fn new(config: SachiConfig) -> Self {
        ResidentN3Machine { config }
    }

    /// Runs a solve with real residency. See
    /// [`crate::machine::SachiMachine::solve_detailed`] for the report's
    /// semantics; here `SramWrite` energy comes from *actual* bitcell
    /// writes (layout + update path), not an analytic reload estimate.
    ///
    /// # Panics
    ///
    /// Panics if the initial spins mismatch the graph, a resolution
    /// override is too small, or a single tuple exceeds a whole tile.
    pub fn solve_detailed(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> (SolveResult, RunReport) {
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let required = graph.bits_required();
        let resolution = match self.config.resolution {
            Some(r) => {
                assert!(
                    r >= required,
                    "resolution override {r} cannot represent {required}-bit coefficients"
                );
                r
            }
            None => required,
        };
        let enc = MixedEncoding::new(resolution).expect("validated by config");
        let tech = &self.config.tech;
        let geometry = self.config.hierarchy.compute;
        let n = graph.num_spins();

        let mut spins = initial.clone();
        let mut tuples = TupleStore::with_tuple_rep(graph, &spins, self.config.tuple_rep);
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut ledger = EnergyLedger::new();
        let mut ctx = ComputeContext::new();
        let mut array = TiledComputeArray::new(geometry, enc.bits());

        // Partition into rounds by actually placing tuples.
        let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
        {
            let mut start = 0usize;
            for i in 0..n {
                match array.plan_tuple(tuples.tuple(i).degree()) {
                    Err(PlacementError::RoundFull) => {
                        chunks.push(start..i);
                        start = i;
                        array.clear();
                        array
                            .plan_tuple(tuples.tuple(i).degree())
                            .expect("fits an empty round");
                    }
                    // TupleTooLarge is the contract violation this method
                    // documents under `# Panics`.
                    other => {
                        other.expect("a single tuple must fit a whole tile (documented panic)");
                    }
                }
            }
            if start < n || n == 0 {
                chunks.push(start..n);
            }
            array.clear();
        }
        let rounds_per_sweep = count_u64(chunks.len());

        let storage_bits_needed = tuples.total_storage_bits(enc.bits()) + tuples.adjacency_bits();
        let uses_dram = storage_bits_needed > self.config.hierarchy.storage.total_bits().get();
        let mut total_cycles =
            tech.dram_stream_cycles(Bits::new(storage_bits_needed).to_bytes_ceil());
        ledger.record(
            EnergyComponent::DramAccess,
            tech.movement_energy_per_bit() * storage_bits_needed,
        );

        let mut compute_cycles = Cycles::ZERO;
        let mut load_cycles = Cycles::ZERO;
        let mut annealer_decisions = 0u64;
        let mut total_flips = 0u64;
        let mut sweeps = 0u64;
        let mut converged = false;
        let mut trace = Vec::new();
        // Placements of the currently resident chunk, indexed by spin.
        let mut placements: Vec<Option<Placement>> = vec![None; n];
        let mut resident_chunk: Option<usize> = None;
        let schedule_fill = 2 + 3; // n3 pipeline fill + tail
                                   // Per-tile cycle sums, hoisted out of the sweep loop (zeroed per
                                   // round) so the hot path never allocates.
        let num_tiles = geometry.tiles();
        let mut tile_sums = vec![0u64; num_tiles];

        let max_sweeps = options.effective_max_sweeps(graph.num_spins());
        while sweeps < max_sweeps {
            // Job-level cancellation (the serve daemon's drain path):
            // stop at a sweep boundary, return the partial state.
            if options.is_cancelled() {
                break;
            }
            let mut flips_this_sweep = 0u64;
            for (round, chunk) in chunks.iter().enumerate() {
                // --- (re)load the round if it is not resident ---
                let mut round_load = Cycles::ZERO;
                if resident_chunk != Some(round) {
                    array.clear();
                    for p in placements.iter_mut() {
                        *p = None;
                    }
                    let mut layout_bits = 0u64;
                    for i in chunk.clone() {
                        let placement = array
                            .load_tuple(tuples.tuple(i), &enc)
                            .expect("chunking fits");
                        placements[i] = Some(placement);
                        layout_bits +=
                            count_u64(tuples.tuple(i).degree()) * (u64::from(enc.bits()) + 1);
                    }
                    resident_chunk = Some(round);
                    // One row per cycle per bank (bank_count == 1 is the
                    // unbanked schedule, cycle-identical by div_ceil(1)).
                    let rows = layout_bits.div_ceil(count_u64(geometry.row_bits()));
                    round_load = tech.storage_to_compute_cycles()
                        + Cycles::new(rows.div_ceil(count_u64(self.config.bank_count)));
                    ledger.record(
                        EnergyComponent::DataMovement,
                        tech.movement_energy_per_bit() * layout_bits,
                    );
                    if uses_dram {
                        let chunk_storage: u64 = chunk
                            .clone()
                            .map(|i| tuples.tuple(i).storage_bits(enc.bits()))
                            .sum();
                        ledger.record(
                            EnergyComponent::DramAccess,
                            tech.movement_energy_per_bit() * chunk_storage,
                        );
                    }
                }

                // --- compute the round ---
                tile_sums.fill(0);
                for i in chunk.clone() {
                    let placement = placements[i].expect("resident");
                    let before = ctx.cycles;
                    let h_sigma = {
                        let tuple = tuples.tuple(i);
                        array.compute_h(placement, tuple, spins.get(i), &enc, &mut ctx)
                    };
                    tile_sums[usize::from(placement.tile)] += ctx.cycles - before;
                    debug_assert_eq!(
                        h_sigma,
                        sachi_ising::hamiltonian::local_field(graph, &spins, i),
                        "resident H_σ diverged from golden at spin {i}"
                    );
                    let current = spins.get(i);
                    let new = decide_update(current, h_sigma, &mut annealer);
                    annealer_decisions += 1;
                    if new != current {
                        spins.set(i, new);
                        flips_this_sweep += 1;
                        // Storage-array side of the update path.
                        let copies = tuples.update_spin(i, new);
                        ledger.record(
                            EnergyComponent::SramRead,
                            tech.rbl_energy_per_bit() * copies,
                        );
                        ledger.record(
                            EnergyComponent::DataMovement,
                            tech.movement_energy_per_bit() * 1u64,
                        );
                        // Compute-array side: refresh the *resident*
                        // copies so later tuples in this round see the
                        // new value (real bit writes). The store's
                        // adjacency index gives the (owner, slot) pairs
                        // without re-deriving them from the graph.
                        for &(t_idx, slot) in tuples.adjacency_of(i) {
                            if let Some(p) = placements[to_index(t_idx)] {
                                array.update_spin_copy(p, to_index(slot), new);
                            }
                        }
                    }
                }
                let round_compute =
                    Cycles::new(tile_sums.iter().copied().max().unwrap_or(0) + schedule_fill);
                compute_cycles += round_compute;
                load_cycles += round_load;
                if sweeps == 0 && round == 0 {
                    total_cycles += round_load + round_compute;
                } else if self.config.prefetch {
                    total_cycles += round_compute.max(round_load);
                } else {
                    total_cycles += round_compute + round_load;
                }
            }

            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        // Tile stats are fully physical here: layout + update writes are
        // actual bits_written events.
        let stats = array.merged_stats();
        ledger.record(
            EnergyComponent::RwlDrive,
            tech.rwl_energy_per_bit() * stats.rwl_activations,
        );
        ledger.record(
            EnergyComponent::RblDischarge,
            tech.rbl_energy_per_bit() * stats.rbl_discharges,
        );
        ledger.record(
            EnergyComponent::SramWrite,
            tech.sram_write_energy_per_bit() * stats.bits_written,
        );
        ledger.record(
            EnergyComponent::DataMovement,
            tech.movement_energy_per_bit() * ctx.rwl_bits_fetched,
        );
        if uses_dram {
            ledger.record(
                EnergyComponent::DramAccess,
                tech.movement_energy_per_bit() * ctx.rwl_bits_fetched,
            );
        }
        ledger.record(
            EnergyComponent::NearMemoryAdd,
            tech.adder_energy_per_bit() * ctx.adder_bit_ops,
        );
        ledger.record(
            EnergyComponent::DecisionLogic,
            tech.adder_energy_per_bit() * ctx.decisions,
        );
        ledger.record(
            EnergyComponent::Annealer,
            tech.annealer_energy_per_decision() * annealer_decisions,
        );

        let report = RunReport {
            design: crate::config::DesignKind::N3,
            resolution_bits: enc.bits(),
            sweeps,
            rounds_per_sweep,
            compute_cycles,
            load_cycles,
            total_cycles,
            wall_time: total_cycles.to_time(tech.cycle_time),
            energy: ledger,
            reuse: ctx.reuse(),
            xnor_ops: ctx.xnor_ops,
            rwl_bits_fetched: ctx.rwl_bits_fetched,
            redundant_discharges: stats.redundant_discharges,
            queue_peak_bits: 0,
            spin_copy_updates: tuples.spin_copy_updates(),
            adjacency_reads: tuples.adjacency_reads(),
            cross_tuple_rereads: tuples.cross_tuple_rereads(),
            prefetches: 0,
            faults: crate::machine::FaultReport::default(),
            // The resident machine's compute_h is its only path.
            fast_path_computes: annealer_decisions,
            scalar_path_computes: 0,
            skipped_spin_writes: 0,
            tile: stats,
            dram: sachi_mem::dram::DramStats::default(),
            phase_spans: Vec::new(),
        };
        let result = SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: false,
        };
        (result, report)
    }
}

impl IterativeSolver for ResidentN3Machine {
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        self.solve_detailed(graph, initial, options).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignKind, SachiConfig};
    use crate::machine::SachiMachine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::CpuReferenceSolver;
    use sachi_mem::cache::CacheHierarchy;

    fn setup(seed: u64) -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(6, 6, |i, j| ((i * 5 + j) % 9) as i32 - 4).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(36, &mut rng);
        let opts = SolveOptions::for_graph(&g, seed + 1).with_trace();
        (g, init, opts)
    }

    #[test]
    fn resident_machine_matches_golden_trajectory() {
        let (g, init, opts) = setup(3);
        let golden = CpuReferenceSolver::new().solve(&g, &init, &opts);
        let mut machine = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3));
        let (result, report) = machine.solve_detailed(&g, &init, &opts);
        assert_eq!(result.energy, golden.energy);
        assert_eq!(
            result.trace, golden.trace,
            "resident updates must keep copies fresh"
        );
        assert_eq!(result.sweeps, golden.sweeps);
        assert!(report.reuse > 1.0);
    }

    #[test]
    fn resident_machine_agrees_with_scratch_machine() {
        let (g, init, opts) = setup(7);
        let mut scratch = SachiMachine::new(SachiConfig::new(DesignKind::N3));
        let (s_result, s_report) = scratch.solve_detailed(&g, &init, &opts);
        let mut resident = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3));
        let (r_result, r_report) = resident.solve_detailed(&g, &init, &opts);
        assert_eq!(s_result.energy, r_result.energy);
        assert_eq!(s_result.trace, r_result.trace);
        // Compute-phase cycle counts match (same schedule arithmetic).
        assert_eq!(s_report.compute_cycles, r_report.compute_cycles);
        // The resident machine writes far fewer bits: layout once per
        // round + 1-bit updates, vs per-compute relayout in the scratch
        // model's tile (whose writes the scratch machine *discards* in
        // favor of analytic billing — here they are the real thing).
        assert!(r_report.energy.component(EnergyComponent::SramWrite).get() > 0.0);
    }

    #[test]
    fn layout_written_once_per_round_plus_updates() {
        let (g, init, opts) = setup(11);
        let enc_bits = g.bits_required() as u64;
        let mut machine = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3));
        let (result, report) = machine.solve_detailed(&g, &init, &opts);
        assert_eq!(report.rounds_per_sweep, 1, "36 tuples fit one round");
        // Everything fits: layout happens exactly once (sweep 0), then
        // only update bits are written.
        let layout_bits: u64 = (0..36).map(|i| g.degree(i) as u64 * (enc_bits + 1)).sum();
        let update_bits: u64 = report.spin_copy_updates; // 1 bit per resident copy refresh
        let written = machine_written_bits(&g, &init, &opts);
        assert_eq!(written, layout_bits + update_bits);
        assert!(result.converged);
    }

    fn machine_written_bits(g: &IsingGraph, init: &SpinVector, opts: &SolveOptions) -> u64 {
        // Re-run capturing the physical counter.
        let mut machine = ResidentN3Machine::new(SachiConfig::new(DesignKind::N3));
        let (_, report) = machine.solve_detailed(g, init, opts);
        let write_pj = report.energy.component(EnergyComponent::SramWrite).get();
        (write_pj / 0.05).round() as u64
    }

    #[test]
    fn small_array_forces_rounds_and_still_matches() {
        let (g, init, opts) = setup(13);
        let tiny = CacheHierarchy {
            compute: CacheGeometry::new(2, 6, 64, 1),
            storage: CacheGeometry::sachi_storage_default(),
        };
        let golden = CpuReferenceSolver::new().solve(&g, &init, &opts);
        let mut machine =
            ResidentN3Machine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(tiny));
        let (result, report) = machine.solve_detailed(&g, &init, &opts);
        assert!(report.rounds_per_sweep > 1);
        assert_eq!(result.energy, golden.energy);
        assert_eq!(result.trace, golden.trace);
        assert!(report.load_cycles > Cycles::ZERO);
    }

    #[test]
    fn array_placement_mechanics() {
        let geometry = CacheGeometry::new(2, 4, 20, 1);
        let enc = MixedEncoding::new(4).unwrap();
        let mut array = TiledComputeArray::new(geometry, 4);
        // Group = 5 bits, 4 groups per row... row_bits 20 -> 4 groups.
        assert_eq!(array.rows_for_degree(4), 1);
        assert_eq!(array.rows_for_degree(5), 2);
        assert_eq!(array.free_rows(), 8);
        let g = topology::complete(5, |_, _| 3).unwrap();
        let spins = SpinVector::filled(5, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let p0 = array.load_tuple(store.tuple(0), &enc).unwrap();
        assert_eq!(p0.rows, 1);
        assert_eq!(array.free_rows(), 7);
        // Fill up and overflow.
        let mut placed = 1;
        loop {
            match array.load_tuple(store.tuple(placed % 5), &enc) {
                Ok(_) => placed += 1,
                Err(PlacementError::RoundFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(placed, 8, "8 one-row tuples fill 2 tiles x 4 rows");
        array.clear();
        assert_eq!(array.free_rows(), 8);
    }

    #[test]
    fn update_spin_copy_changes_subsequent_compute() {
        let geometry = CacheGeometry::new(1, 4, 40, 1);
        let enc = MixedEncoding::new(4).unwrap();
        let mut array = TiledComputeArray::new(geometry, 4);
        let g = topology::complete(3, |_, _| 2).unwrap();
        let spins = SpinVector::filled(3, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let p = array.load_tuple(store.tuple(0), &enc).unwrap();
        let mut ctx = ComputeContext::new();
        let before = array.compute_h(p, store.tuple(0), Spin::Up, &enc, &mut ctx);
        // Flip neighbor copy at slot 0 (spin 1 in tuple 0).
        array.update_spin_copy(p, 0, Spin::Down);
        let mut tuple = store.tuple(0).clone();
        tuple.neighbor_spins[0] = Spin::Down;
        let after = array.compute_h(p, &tuple, Spin::Up, &enc, &mut ctx);
        assert_ne!(before, after);
        // -(2*1 + 2*1) = -4 before; -(2*(-1) + 2*1) = 0 after.
        assert_eq!(before, -4);
        assert_eq!(after, 0);
    }

    #[test]
    fn oversized_tuple_is_rejected() {
        let geometry = CacheGeometry::new(1, 2, 10, 1); // 2 groups/row, 2 rows
        let enc = MixedEncoding::new(4).unwrap();
        let mut array = TiledComputeArray::new(geometry, 4);
        let g = topology::star(6, |_| 1).unwrap(); // hub has 5 neighbors -> 3 rows
        let spins = SpinVector::filled(6, Spin::Up);
        let store = TupleStore::new(&g, &spins);
        let err = array.load_tuple(store.tuple(0), &enc).unwrap_err();
        assert_eq!(
            err,
            PlacementError::TupleTooLarge {
                needed: 3,
                available: 2
            }
        );
        assert!(format!("{err}").contains("3 rows"));
    }
}
