//! A CUDA-like host API for programming SACHI (Sec. VII.3).
//!
//! The paper sketches the software story as ongoing work: "a CUDA-like
//! library/API to program SACHI as part of a complete program" with mode
//! switching "achieved by programming a special-purpose register". This
//! module provides that layer:
//!
//! * [`SachiContext`] owns the repurposed L1 (the [`L1Cache`] mode
//!   register) and a configured machine;
//! * [`SachiContext::upload`] stages a problem (graph + initial spins)
//!   as a device problem handle;
//! * [`SachiContext::launch`] programs the mode register into compute
//!   mode (flushing the cache — the honest cost of repurposing), runs the
//!   solve, and returns to normal mode so conventional accesses resume;
//! * between launches the cache is an ordinary L1
//!   ([`SachiContext::l1_mut`]), which is how the `disc_conventional`
//!   harness quantifies Sec. VII.1's "impact on conventional workloads".
//!
//! ```
//! use sachi_core::prelude::*;
//! use sachi_ising::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
//! let graph = topology::king(4, 4, |_, _| 1)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let init = SpinVector::random(16, &mut rng);
//!
//! let problem = ctx.upload(&graph, &init);
//! let launch = ctx.launch(&problem, &SolveOptions::for_graph(&graph, 2));
//! assert!(launch.result.converged);
//! // Back in normal mode: the L1 serves ordinary reads again.
//! assert!(ctx.l1_mut().read(0x1000).is_ok());
//! # Ok::<(), sachi_ising::graph::GraphError>(())
//! ```

use crate::config::SachiConfig;
use crate::machine::{RunReport, SachiMachine};
use sachi_ising::graph::IsingGraph;
use sachi_ising::solver::{SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::l1cache::{CacheMode, L1Cache};
use sachi_mem::units::Cycles;

/// A staged problem: what `cudaMalloc` + `cudaMemcpy` would have done.
#[derive(Debug, Clone)]
pub struct ProblemHandle {
    graph: IsingGraph,
    initial: SpinVector,
    id: u64,
}

impl ProblemHandle {
    /// The staged graph.
    pub fn graph(&self) -> &IsingGraph {
        &self.graph
    }

    /// The staged initial spins.
    pub fn initial(&self) -> &SpinVector {
        &self.initial
    }

    /// Handle id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Everything one `launch` returns.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The algorithmic outcome.
    pub result: SolveResult,
    /// The architecture report.
    pub report: RunReport,
    /// L1 lines flushed when entering compute mode.
    pub lines_flushed_entering: u64,
    /// Cycles spent on the two mode switches (SPR write + flush drain,
    /// one line per cycle).
    pub mode_switch_cycles: Cycles,
}

/// The host-side SACHI programming context.
#[derive(Debug)]
pub struct SachiContext {
    config: SachiConfig,
    l1: L1Cache,
    next_id: u64,
    launches: u64,
}

impl SachiContext {
    /// Creates a context with a typical 64KB L1 front-end.
    pub fn new(config: SachiConfig) -> Self {
        SachiContext {
            config,
            l1: L1Cache::typical_l1(),
            next_id: 0,
            launches: 0,
        }
    }

    /// Creates a context with an explicit L1 model.
    pub fn with_l1(config: SachiConfig, l1: L1Cache) -> Self {
        SachiContext {
            config,
            l1,
            next_id: 0,
            launches: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SachiConfig {
        &self.config
    }

    /// The L1 cache, for normal-mode traffic between launches.
    pub fn l1_mut(&mut self) -> &mut L1Cache {
        &mut self.l1
    }

    /// Read-only view of the L1.
    pub fn l1(&self) -> &L1Cache {
        &self.l1
    }

    /// Number of launches performed.
    pub fn launches(&self) -> u64 {
        self.launches
    }

    /// Stages a problem for launch.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len()` does not match the graph.
    pub fn upload(&mut self, graph: &IsingGraph, initial: &SpinVector) -> ProblemHandle {
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let id = self.next_id;
        self.next_id += 1;
        ProblemHandle {
            graph: graph.clone(),
            initial: initial.clone(),
            id,
        }
    }

    /// Runs a staged problem: programs the mode register to compute mode
    /// (flushing the L1), executes the solve on the configured machine,
    /// and returns the register to normal mode.
    pub fn launch(&mut self, problem: &ProblemHandle, options: &SolveOptions) -> Launch {
        let flushed = self.l1.set_mode(CacheMode::IsingCompute);
        let mut machine = SachiMachine::new(self.config.clone());
        let (result, report) = machine.solve_detailed(&problem.graph, &problem.initial, options);
        self.l1.set_mode(CacheMode::Normal);
        self.launches += 1;
        // SPR write (1 cycle) per switch + flush drain at one line/cycle.
        let mode_switch_cycles = Cycles::new(2 + flushed);
        Launch {
            result,
            report,
            lines_flushed_entering: flushed,
            mode_switch_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::{CpuReferenceSolver, IterativeSolver};

    fn setup() -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(5, 5, |i, j| ((i + j) % 5) as i32 + 1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let init = SpinVector::random(25, &mut rng);
        let opts = SolveOptions::for_graph(&g, 4);
        (g, init, opts)
    }

    #[test]
    fn launch_matches_direct_machine_and_golden() {
        let (g, init, opts) = setup();
        let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
        let problem = ctx.upload(&g, &init);
        let launch = ctx.launch(&problem, &opts);
        let golden = CpuReferenceSolver::new().solve(&g, &init, &opts);
        assert_eq!(launch.result.energy, golden.energy);
        assert_eq!(launch.result.sweeps, golden.sweeps);
        assert_eq!(ctx.launches(), 1);
        assert_eq!(launch.report.sweeps, golden.sweeps);
    }

    #[test]
    fn launch_flushes_warm_cache_and_restores_normal_mode() {
        let (g, init, opts) = setup();
        let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
        // Warm the L1 with conventional traffic.
        for addr in 0..32u64 {
            ctx.l1_mut().read(addr * 64).unwrap();
        }
        let problem = ctx.upload(&g, &init);
        let launch = ctx.launch(&problem, &opts);
        assert_eq!(launch.lines_flushed_entering, 32);
        assert_eq!(launch.mode_switch_cycles, Cycles::new(34));
        // Normal mode resumed; the warm lines are gone (cold restart).
        assert_eq!(ctx.l1().mode(), CacheMode::Normal);
        assert!(matches!(
            ctx.l1_mut().read(0).unwrap(),
            sachi_mem::l1cache::Access::Miss { .. }
        ));
    }

    #[test]
    fn cold_cache_launch_is_cheap() {
        let (g, init, opts) = setup();
        let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N2));
        let problem = ctx.upload(&g, &init);
        let launch = ctx.launch(&problem, &opts);
        assert_eq!(launch.lines_flushed_entering, 0);
        assert_eq!(launch.mode_switch_cycles, Cycles::new(2));
    }

    #[test]
    fn handles_are_reusable_and_distinct() {
        let (g, init, opts) = setup();
        let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
        let a = ctx.upload(&g, &init);
        let b = ctx.upload(&g, &init);
        assert_ne!(a.id(), b.id());
        let first = ctx.launch(&a, &opts);
        let second = ctx.launch(&a, &opts);
        assert_eq!(first.result.energy, second.result.energy);
        assert_eq!(ctx.launches(), 2);
        assert_eq!(a.graph().num_spins(), 25);
        assert_eq!(a.initial().len(), 25);
    }
}
