//! Software support: the repurposed `FIST` opcodes and the new `XNORM`
//! instruction (Sec. IV.E, Fig. 14).
//!
//! SACHI's compiler story is deliberately thin: the x86 `FIST` integer
//! store (primary opcode `0xDB`) is repurposed with a *secondary* opcode
//! selecting the data-movement hop, and one new instruction `XNORM
//! DEST, [SRC1], [SRC2], BIT` triggers an in-memory XNOR with `SRC1` the
//! storage-array address driven onto the RWL, `SRC2` the compute-array
//! address, and `BIT` the `J_ij` resolution. This module provides the
//! encoder/decoder and a micro-executor that runs small programs against a
//! real [`SramTile`], so the ISA semantics are tested against the same
//! datapath the machine uses.

use crate::encoding::MixedEncoding;
use sachi_mem::sram::SramTile;
use std::fmt;

/// Primary opcode of the repurposed `FIST` (x86 `0xDB`).
pub const FIST_PRIMARY_OPCODE: u8 = 0xDB;
/// Primary opcode of the new `XNORM` instruction.
pub const XNORM_PRIMARY_OPCODE: u8 = 0x30;

/// Secondary opcodes of the repurposed `FIST` (Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FistSubop {
    /// `SO = 0x00`: write into DRAM.
    DramWrite,
    /// `SO = 0x01`: DRAM to storage array.
    DramToStorage,
    /// `SO = 0x10`: storage to compute array.
    StorageToCompute,
}

impl FistSubop {
    /// The encoded secondary opcode byte.
    pub fn secondary_opcode(self) -> u8 {
        match self {
            FistSubop::DramWrite => 0x00,
            FistSubop::DramToStorage => 0x01,
            FistSubop::StorageToCompute => 0x10,
        }
    }

    /// Decodes a secondary opcode byte.
    pub fn from_secondary_opcode(so: u8) -> Option<Self> {
        match so {
            0x00 => Some(FistSubop::DramWrite),
            0x01 => Some(FistSubop::DramToStorage),
            0x10 => Some(FistSubop::StorageToCompute),
            _ => None,
        }
    }
}

impl fmt::Display for FistSubop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FistSubop::DramWrite => write!(f, "FIST.dram"),
            FistSubop::DramToStorage => write!(f, "FIST.dram2storage"),
            FistSubop::StorageToCompute => write!(f, "FIST.storage2compute"),
        }
    }
}

/// One SACHI instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Repurposed `FIST`: move `len` bits starting at bit address `addr`
    /// along the hop selected by `subop`.
    Fist {
        /// Which hop to perform.
        subop: FistSubop,
        /// Source bit address.
        addr: u32,
        /// Number of bits to move.
        len: u16,
    },
    /// `XNORM DEST, [SRC1], [SRC2], BIT`: in-memory XNOR of the
    /// `bit`-bit IC at compute address `src2` against the spin at storage
    /// address `src1`, result (decoded product) into register `dest`.
    Xnorm {
        /// Destination register (0..16).
        dest: u8,
        /// Storage-array bit address of the driving spin.
        src1: u32,
        /// Compute-array address: `row << 16 | column`.
        src2: u32,
        /// `J_ij` resolution in bits.
        bit: u8,
    },
}

/// Errors from instruction decode or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The byte stream ended mid-instruction.
    Truncated,
    /// Unknown primary opcode.
    UnknownOpcode(u8),
    /// Unknown `FIST` secondary opcode.
    UnknownSubop(u8),
    /// An operand referenced memory out of range.
    OperandOutOfRange(&'static str),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::Truncated => write!(f, "instruction stream truncated"),
            IsaError::UnknownOpcode(op) => write!(f, "unknown primary opcode {op:#04x}"),
            IsaError::UnknownSubop(so) => write!(f, "unknown FIST secondary opcode {so:#04x}"),
            IsaError::OperandOutOfRange(what) => write!(f, "operand out of range: {what}"),
        }
    }
}

impl std::error::Error for IsaError {}

impl Instruction {
    /// Encodes to bytes.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            Instruction::Fist { subop, addr, len } => {
                let mut bytes = vec![FIST_PRIMARY_OPCODE, subop.secondary_opcode()];
                bytes.extend_from_slice(&addr.to_le_bytes());
                bytes.extend_from_slice(&len.to_le_bytes());
                bytes
            }
            Instruction::Xnorm {
                dest,
                src1,
                src2,
                bit,
            } => {
                let mut bytes = vec![XNORM_PRIMARY_OPCODE, dest];
                bytes.extend_from_slice(&src1.to_le_bytes());
                bytes.extend_from_slice(&src2.to_le_bytes());
                bytes.push(bit);
                bytes
            }
        }
    }

    /// Decodes one instruction, returning it and the bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError`] on truncation or unknown opcodes.
    pub fn decode(bytes: &[u8]) -> Result<(Instruction, usize), IsaError> {
        let &op = bytes.first().ok_or(IsaError::Truncated)?;
        match op {
            FIST_PRIMARY_OPCODE => {
                if bytes.len() < 8 {
                    return Err(IsaError::Truncated);
                }
                let subop = FistSubop::from_secondary_opcode(bytes[1])
                    .ok_or(IsaError::UnknownSubop(bytes[1]))?;
                let addr = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
                let len = u16::from_le_bytes([bytes[6], bytes[7]]);
                Ok((Instruction::Fist { subop, addr, len }, 8))
            }
            XNORM_PRIMARY_OPCODE => {
                if bytes.len() < 11 {
                    return Err(IsaError::Truncated);
                }
                let dest = bytes[1];
                let src1 = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
                let src2 = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
                let bit = bytes[10];
                Ok((
                    Instruction::Xnorm {
                        dest,
                        src1,
                        src2,
                        bit,
                    },
                    11,
                ))
            }
            other => Err(IsaError::UnknownOpcode(other)),
        }
    }

    /// Decodes a whole program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError`] on the first malformed instruction.
    pub fn decode_program(mut bytes: &[u8]) -> Result<Vec<Instruction>, IsaError> {
        let mut program = Vec::new();
        while !bytes.is_empty() {
            let (insn, used) = Instruction::decode(bytes)?;
            program.push(insn);
            bytes = &bytes[used..];
        }
        Ok(program)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::Fist { subop, addr, len } => write!(f, "{subop} addr={addr:#x} len={len}"),
            Instruction::Xnorm {
                dest,
                src1,
                src2,
                bit,
            } => {
                write!(f, "XNORM r{dest}, [{src1:#x}], [{src2:#x}], {bit}")
            }
        }
    }
}

/// A miniature executor wiring the ISA to a real compute tile: DRAM and
/// the storage array are flat bit arrays; `XNORM` pulses the tile.
#[derive(Debug)]
pub struct MicroExecutor {
    dram: Vec<bool>,
    storage: Vec<bool>,
    tile: SramTile,
    registers: [i64; 16],
}

impl MicroExecutor {
    /// Creates an executor with the given memory sizes (in bits) and a
    /// compute tile.
    pub fn new(dram_bits: usize, storage_bits: usize, tile: SramTile) -> Self {
        MicroExecutor {
            dram: vec![false; dram_bits],
            storage: vec![false; storage_bits],
            tile,
            registers: [0; 16],
        }
    }

    /// Host-side write of input data into DRAM (what `FIST.dram` models;
    /// also available directly for test setup).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OperandOutOfRange`] if the write exceeds DRAM.
    pub fn write_dram(&mut self, addr: usize, bits: &[bool]) -> Result<(), IsaError> {
        if addr + bits.len() > self.dram.len() {
            return Err(IsaError::OperandOutOfRange("dram write"));
        }
        self.dram[addr..addr + bits.len()].copy_from_slice(bits);
        Ok(())
    }

    /// Register file read.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 16`.
    pub fn register(&self, r: u8) -> i64 {
        self.registers[r as usize]
    }

    /// The compute tile (for inspection).
    pub fn tile(&self) -> &SramTile {
        &self.tile
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OperandOutOfRange`] on bad addresses.
    pub fn execute(&mut self, insn: Instruction) -> Result<(), IsaError> {
        match insn {
            Instruction::Fist { subop, addr, len } => {
                let addr = addr as usize;
                let len = len as usize;
                match subop {
                    FistSubop::DramWrite => {
                        // Zero-fill model of an external store into DRAM.
                        if addr + len > self.dram.len() {
                            return Err(IsaError::OperandOutOfRange("FIST.dram"));
                        }
                        for b in &mut self.dram[addr..addr + len] {
                            *b = false;
                        }
                    }
                    FistSubop::DramToStorage => {
                        if addr + len > self.dram.len() || len > self.storage.len() {
                            return Err(IsaError::OperandOutOfRange("FIST.dram2storage"));
                        }
                        let (src, dst) = (addr, 0);
                        for i in 0..len {
                            self.storage[dst + i] = self.dram[src + i];
                        }
                    }
                    FistSubop::StorageToCompute => {
                        if addr + len > self.storage.len() || len > self.tile.cols() {
                            return Err(IsaError::OperandOutOfRange("FIST.storage2compute"));
                        }
                        let bits: Vec<bool> = self.storage[addr..addr + len].to_vec();
                        self.tile
                            .write_row(0, &bits)
                            .map_err(|_| IsaError::OperandOutOfRange("compute row"))?;
                    }
                }
            }
            Instruction::Xnorm {
                dest,
                src1,
                src2,
                bit,
            } => {
                if dest >= 16 {
                    return Err(IsaError::OperandOutOfRange("XNORM dest"));
                }
                let spin = *self
                    .storage
                    .get(src1 as usize)
                    .ok_or(IsaError::OperandOutOfRange("XNORM src1"))?;
                let row = (src2 >> 16) as usize;
                let col = (src2 & 0xFFFF) as usize;
                let r = u32::from(bit);
                let enc =
                    MixedEncoding::new(r).map_err(|_| IsaError::OperandOutOfRange("XNORM bit"))?;
                let out = self
                    .tile
                    .compute_xnor(row, spin, col..col + r as usize)
                    .map_err(|_| IsaError::OperandOutOfRange("XNORM src2"))?;
                let mut value = enc.decode(&out);
                if !spin {
                    value += 1; // eqn. 4's +1 for a -1 spin
                }
                self.registers[dest as usize] = value;
            }
        }
        Ok(())
    }

    /// Executes a program.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError`] from the first failing instruction.
    pub fn run(&mut self, program: &[Instruction]) -> Result<(), IsaError> {
        for &insn in program {
            self.execute(insn)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sachi_ising::spin::Spin;

    #[test]
    fn fig14_opcode_table() {
        assert_eq!(FIST_PRIMARY_OPCODE, 0xDB);
        assert_eq!(XNORM_PRIMARY_OPCODE, 0x30);
        assert_eq!(FistSubop::DramWrite.secondary_opcode(), 0x00);
        assert_eq!(FistSubop::DramToStorage.secondary_opcode(), 0x01);
        assert_eq!(FistSubop::StorageToCompute.secondary_opcode(), 0x10);
        assert_eq!(
            FistSubop::from_secondary_opcode(0x10),
            Some(FistSubop::StorageToCompute)
        );
        assert_eq!(FistSubop::from_secondary_opcode(0x02), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let insns = [
            Instruction::Fist {
                subop: FistSubop::DramToStorage,
                addr: 0x1234,
                len: 96,
            },
            Instruction::Xnorm {
                dest: 3,
                src1: 0x10,
                src2: (2 << 16) | 8,
                bit: 4,
            },
            Instruction::Fist {
                subop: FistSubop::StorageToCompute,
                addr: 0,
                len: 16,
            },
        ];
        let mut bytes = Vec::new();
        for insn in &insns {
            bytes.extend(insn.encode());
        }
        let decoded = Instruction::decode_program(&bytes).unwrap();
        assert_eq!(decoded, insns);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(Instruction::decode(&[]).unwrap_err(), IsaError::Truncated);
        assert_eq!(
            Instruction::decode(&[0xDB, 0x00]).unwrap_err(),
            IsaError::Truncated
        );
        assert_eq!(
            Instruction::decode(&[0xFF; 11]).unwrap_err(),
            IsaError::UnknownOpcode(0xFF)
        );
        assert_eq!(
            Instruction::decode(&[0xDB, 0x7A, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            IsaError::UnknownSubop(0x7A)
        );
        let msg = format!("{}", IsaError::UnknownSubop(0x7A));
        assert!(msg.contains("0x7a"));
    }

    #[test]
    fn display_formats() {
        let f = Instruction::Fist {
            subop: FistSubop::DramWrite,
            addr: 16,
            len: 8,
        };
        assert_eq!(format!("{f}"), "FIST.dram addr=0x10 len=8");
        let x = Instruction::Xnorm {
            dest: 2,
            src1: 1,
            src2: 3,
            bit: 4,
        };
        assert!(format!("{x}").starts_with("XNORM r2"));
    }

    #[test]
    fn micro_executor_computes_xnor_product() {
        // Load an IC into the compute row via DRAM -> storage -> compute,
        // then XNORM it against a spin.
        let enc = MixedEncoding::new(4).unwrap();
        let j = -5i64;
        let j_bits = enc.encode(j).unwrap();
        let mut exec = MicroExecutor::new(64, 64, SramTile::new(1, 16));
        // Storage layout: bits 0..4 = IC, bit 8 = spin (sigma = +1 -> 1).
        exec.write_dram(0, &j_bits).unwrap();
        let program = vec![
            Instruction::Fist {
                subop: FistSubop::DramToStorage,
                addr: 0,
                len: 4,
            },
            Instruction::Fist {
                subop: FistSubop::StorageToCompute,
                addr: 0,
                len: 4,
            },
        ];
        exec.run(&program).unwrap();
        // Spin +1 at storage bit 8.
        exec.storage[8] = Spin::Up.bit();
        exec.execute(Instruction::Xnorm {
            dest: 1,
            src1: 8,
            src2: 0,
            bit: 4,
        })
        .unwrap();
        assert_eq!(exec.register(1), j); // J * (+1)
        exec.storage[8] = Spin::Down.bit();
        exec.execute(Instruction::Xnorm {
            dest: 2,
            src1: 8,
            src2: 0,
            bit: 4,
        })
        .unwrap();
        assert_eq!(exec.register(2), -j); // J * (-1)
        assert!(exec.tile().stats().compute_accesses >= 2);
    }

    #[test]
    fn micro_executor_bounds_checks() {
        let mut exec = MicroExecutor::new(16, 16, SramTile::new(1, 8));
        assert!(exec.write_dram(10, &[true; 10]).is_err());
        assert!(exec
            .execute(Instruction::Fist {
                subop: FistSubop::DramToStorage,
                addr: 12,
                len: 8
            })
            .is_err());
        assert!(exec
            .execute(Instruction::Xnorm {
                dest: 20,
                src1: 0,
                src2: 0,
                bit: 4
            })
            .is_err());
        assert!(exec
            .execute(Instruction::Xnorm {
                dest: 1,
                src1: 99,
                src2: 0,
                bit: 4
            })
            .is_err());
        assert!(exec
            .execute(Instruction::Xnorm {
                dest: 1,
                src1: 0,
                src2: 0,
                bit: 33
            })
            .is_err());
        assert!(exec
            .execute(Instruction::Xnorm {
                dest: 1,
                src1: 0,
                src2: 5 << 16,
                bit: 4
            })
            .is_err());
    }
}
