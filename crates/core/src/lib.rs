//! # sachi-core — the SACHI architecture
//!
//! This crate is the paper's primary contribution: a **S**tationarity-
//! **A**ware, all-digital, near-memory Ising ar**CHI**tecture (HPCA 2024)
//! that repurposes a CPU's L1 cache as an in-SRAM XNOR compute array and
//! its L2 cache as a tuple storage array.
//!
//! * [`encoding`] — the mixed encoding scheme (Sec. IV.C, Fig. 9):
//!   R-bit two's-complement ICs, 1/0 spins, eqn. 4 XNOR products and the
//!   eqn. 5 reuse-aware variant (with a documented erratum fix);
//! * [`mod@tuple`] — tuple mapping and tuple-rep (Sec. IV.B, Figs. 7–8) with
//!   the adjacency-matrix update path;
//! * [`designs`] — the four stationarity designs SACHI(n1a/n1b/n2/n3)
//!   (Sec. IV.D, Figs. 11–13), each computing functionally through a real
//!   SRAM tile;
//! * [`phases`] — the five-phase pipeline timing (Fig. 11f);
//! * [`machine`] — [`machine::SachiMachine`], a fully-accounted functional
//!   machine implementing the shared iterative-solver protocol;
//! * [`perf`] — the closed-form CPI/energy model used for million-spin
//!   sweeps (pinned against the machine by parity tests);
//! * [`isa`] — the `FIST`/`XNORM` software interface (Sec. IV.E, Fig. 14);
//! * [`config`] — machine configuration and the Sec. VII.2 cache presets;
//! * [`ensemble`] — thread-safe per-replica [`machine::RunReport`]
//!   folding for parallel replica ensembles, cross-checked against the
//!   [`multicore`] analytic model.
//!
//! ## Example
//!
//! ```
//! use sachi_core::prelude::*;
//! use sachi_ising::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Solve a ferromagnetic King's lattice on the mixed-stationary design.
//! let graph = topology::king(5, 5, |_, _| 1)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let init = SpinVector::random(25, &mut rng);
//! let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
//! let (result, report) = machine.solve_detailed(&graph, &init, &SolveOptions::for_graph(&graph, 1));
//! assert!(result.converged);
//! assert!(report.reuse > 1.0); // reuse-aware compute
//! # Ok::<(), sachi_ising::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod designs;
pub mod encoding;
pub mod ensemble;
pub mod error;
pub mod isa;
pub mod machine;
pub mod multicore;
pub mod perf;
pub mod phases;
pub mod runtime;
pub mod serve;
pub mod tiled;
pub mod tuple;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::config::{DesignKind, FaultProfile, SachiConfig};
    pub use crate::designs::{stationarity, ComputeContext, ComputeScratch, Stationarity};
    pub use crate::encoding::MixedEncoding;
    pub use crate::ensemble::{DetailedSolver, EnsembleReport, ReplicaLedger, ReportingMachine};
    pub use crate::error::{SachiError, ServerReason};
    pub use crate::isa::{FistSubop, Instruction, MicroExecutor};
    pub use crate::machine::{FaultReport, RunReport, SachiMachine};
    pub use crate::multicore::{MulticoreEstimate, MulticoreModel, Partition};
    pub use crate::perf::{IterationEstimate, PerfModel, SolveEstimate};
    pub use crate::phases::PhaseSchedule;
    pub use crate::runtime::{Launch, ProblemHandle, SachiContext};
    pub use crate::serve::{
        build_cop_problem, CopProblem, JobHandle, JobLimits, JobOutcome, JobPlan, JobResult,
        JobSpec, SolverPool, INIT_SEED_SALT,
    };
    pub use crate::tiled::{Placement, PlacementError, ResidentN3Machine, TiledComputeArray};
    pub use crate::tuple::{SpinTuple, TuplePlaneView, TuplePlanes, TupleStore};
}
