//! Multi-core scaling model (Sec. IV.B.2).
//!
//! "To efficiently solve large COPs, reducing inter-CPU core interactions
//! is crucial. For PIM designs, this involves minimizing interactions
//! between sub-arrays of the compute array ... and extending the same
//! philosophy to reduce inter-core interactions." Each core owns a
//! partition of the tuples (its own compute/storage arrays); the only
//! inter-core traffic is spin updates whose adjacency crosses the
//! partition — exactly the update-path messages of Fig. 8b, now over an
//! interconnect.
//!
//! [`Partition`] assigns spins to cores and computes the cross-core cut;
//! [`MulticoreModel`] combines the per-core [`crate::perf::PerfModel`]
//! with an interconnect-broadcast term. Locality-aware partitions
//! (contiguous blocks of a lattice) cut orders of magnitude fewer edges
//! than interleaved ones, which is the whole scaling argument.

use crate::config::SachiConfig;
use crate::perf::PerfModel;
use sachi_ising::graph::IsingGraph;
use sachi_mem::units::Cycles;
use sachi_workloads::spec::WorkloadShape;

/// A spin-to-core assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    cores: usize,
}

impl Partition {
    /// Contiguous blocks: spins `[k·n/C, (k+1)·n/C)` to core `k`. For
    /// lattice-ordered graphs (King's, grid) this is the locality-aware
    /// choice.
    ///
    /// An empty graph (`n == 0`) yields an empty assignment — every core
    /// owns zero spins — rather than silently dividing by a clamped
    /// size. With `n < cores` the blocks degenerate to one spin each and
    /// the surplus cores own nothing; block sizes always differ by at
    /// most one.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn contiguous(n: usize, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        if n == 0 {
            return Partition {
                assignment: Vec::new(),
                cores,
            };
        }
        // i < n ⇒ i·C/n ≤ (n-1)·C/n < C, so the index is already in
        // range without clamping.
        let assignment = (0..n).map(|i| ((i * cores) / n) as u32).collect();
        Partition { assignment, cores }
    }

    /// Round-robin interleaving: spin `i` to core `i % C`. Maximally
    /// locality-oblivious — the baseline the paper's philosophy argues
    /// against.
    ///
    /// The same edge-case contract as [`Partition::contiguous`]: an
    /// empty graph (`n == 0`) yields an empty assignment — every core
    /// owns zero spins; with `n < cores` the first `n` cores own one
    /// spin each and the surplus cores own nothing. `core_of` is total
    /// over `0..n` in every case (`i % cores < cores`, so the index
    /// never needs clamping).
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn interleaved(n: usize, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        if n == 0 {
            return Partition {
                assignment: Vec::new(),
                cores,
            };
        }
        Partition {
            assignment: (0..n).map(|i| (i % cores) as u32).collect(),
            cores,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The core owning spin `i`.
    pub fn core_of(&self, i: usize) -> u32 {
        self.assignment[i]
    }

    /// Spins per core.
    pub fn core_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.cores];
        for &c in &self.assignment {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Number of graph edges whose endpoints live on different cores —
    /// each one is a tuple-rep copy that must be refreshed over the
    /// interconnect when its remote endpoint flips.
    ///
    /// # Panics
    ///
    /// Panics if the graph size differs from the partition.
    pub fn cut_edges(&self, graph: &IsingGraph) -> u64 {
        assert_eq!(
            graph.num_spins(),
            self.assignment.len(),
            "partition must match graph"
        );
        graph
            .edges()
            .filter(|&(u, v, _)| self.assignment[u as usize] != self.assignment[v as usize])
            .count() as u64
    }
}

/// Per-sweep estimate of a multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreEstimate {
    /// Cores used.
    pub cores: usize,
    /// Critical-path cycles of the busiest core's compute.
    pub core_cycles: Cycles,
    /// Interconnect cycles for cross-core spin-update messages.
    pub interconnect_cycles: Cycles,
    /// Effective cycles per iteration (compute and broadcast overlap up
    /// to the longer of the two).
    pub effective_cycles: Cycles,
    /// Cross-core edges of the partition.
    pub cut_edges: u64,
    /// Speedup over the same configuration on a single core.
    pub speedup_vs_single: f64,
}

/// The multi-core analytic model.
#[derive(Debug, Clone)]
pub struct MulticoreModel {
    config: SachiConfig,
    /// Spin-update messages the interconnect moves per cycle.
    pub interconnect_msgs_per_cycle: u64,
    /// Fraction of spins assumed to flip per sweep (same knob as the
    /// perf model's update-energy estimate).
    pub assumed_flip_fraction: f64,
}

impl MulticoreModel {
    /// Creates a model with a 16-message/cycle interconnect and a 5% flip
    /// assumption.
    pub fn new(config: SachiConfig) -> Self {
        MulticoreModel {
            config,
            interconnect_msgs_per_cycle: 16,
            assumed_flip_fraction: 0.05,
        }
    }

    /// Estimates one sweep of `graph` under `partition`, with per-spin
    /// neighborhood shape `(n, r)` taken from the graph itself.
    pub fn estimate(&self, graph: &IsingGraph, partition: &Partition) -> MulticoreEstimate {
        let model = PerfModel::new(self.config.clone());
        let n = graph.max_degree().max(1) as u64;
        let r = graph.bits_required();

        // Busiest core bounds the compute phase.
        let biggest = partition.core_sizes().into_iter().max().unwrap_or(0);
        let core_shape = WorkloadShape::new(biggest.max(1), n, r);
        let core_cycles = model.iteration(&core_shape).effective_cycles;

        // Cross-core update traffic: every cut edge is a remote tuple-rep
        // copy; a flipped endpoint sends one message per remote copy.
        let cut = partition.cut_edges(graph);
        let messages = (2.0 * cut as f64 * self.assumed_flip_fraction).ceil() as u64;
        let interconnect = Cycles::new(messages.div_ceil(self.interconnect_msgs_per_cycle.max(1)));

        // Update messages overlap compute like the prefetcher overlaps
        // loads; the longer phase wins.
        let effective = core_cycles.max(interconnect);

        let single_shape = WorkloadShape::new(graph.num_spins() as u64, n, r);
        let single = model.iteration(&single_shape).effective_cycles;
        MulticoreEstimate {
            cores: partition.cores(),
            core_cycles,
            interconnect_cycles: interconnect,
            effective_cycles: effective,
            cut_edges: cut,
            speedup_vs_single: single.get() as f64 / effective.get().max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignKind;
    use sachi_ising::graph::topology;

    #[test]
    fn partitions_cover_all_spins_evenly() {
        for n in [10usize, 100, 101] {
            for cores in [1usize, 2, 4, 7] {
                for p in [
                    Partition::contiguous(n, cores),
                    Partition::interleaved(n, cores),
                ] {
                    let sizes = p.core_sizes();
                    assert_eq!(sizes.iter().sum::<u64>(), n as u64);
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(
                        max - min <= (n % cores).max(1) as u64,
                        "imbalanced: {sizes:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn contiguous_cuts_fewer_lattice_edges_than_interleaved() {
        let g = topology::king(40, 40, |_, _| 1).unwrap();
        let contiguous = Partition::contiguous(1600, 4);
        let interleaved = Partition::interleaved(1600, 4);
        let cc = contiguous.cut_edges(&g);
        let ic = interleaved.cut_edges(&g);
        assert!(
            cc * 5 < ic,
            "contiguous cut {cc} not much less than interleaved {ic}"
        );
        // Row-major contiguous quarters cut ~3 row boundaries of King's
        // edges: 3 seams x ~(3*40) edges.
        assert!(cc < 500, "cut {cc} too high for block partition");
    }

    #[test]
    fn complete_graph_has_no_good_partition() {
        let g = topology::complete(64, |_, _| 1).unwrap();
        let contiguous = Partition::contiguous(64, 4).cut_edges(&g);
        let interleaved = Partition::interleaved(64, 4).cut_edges(&g);
        // K64 has 2016 edges; any 4-way equal split cuts 3/4 of them.
        assert_eq!(contiguous, interleaved);
        assert_eq!(contiguous, 2016 - 4 * 120); // total minus 4 x C(16,2) internal
    }

    #[test]
    fn more_cores_speed_up_lattices() {
        let g = topology::king(64, 64, |_, _| 1).unwrap();
        let model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
        let mut last = 0.0;
        for cores in [1usize, 2, 4, 8] {
            let est = model.estimate(&g, &Partition::contiguous(4096, cores));
            assert!(
                est.speedup_vs_single >= last * 0.99,
                "speedup regressed at {cores} cores: {} < {last}",
                est.speedup_vs_single
            );
            last = est.speedup_vs_single;
            assert_eq!(est.cores, cores);
        }
        assert!(
            last > 2.0,
            "8 cores should speed a 4K lattice by >2x, got {last:.2}"
        );
    }

    #[test]
    fn single_core_estimate_is_neutral() {
        let g = topology::king(20, 20, |_, _| 1).unwrap();
        let model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
        let est = model.estimate(&g, &Partition::contiguous(400, 1));
        assert_eq!(est.cut_edges, 0);
        assert_eq!(est.interconnect_cycles, Cycles::ZERO);
        assert!((est.speedup_vs_single - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interconnect_bound_caps_dense_graph_scaling() {
        let g = topology::complete(512, |_, _| 1).unwrap();
        let mut model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
        model.interconnect_msgs_per_cycle = 1; // starve the interconnect
        let est = model.estimate(&g, &Partition::contiguous(512, 8));
        // The broadcast term dominates the busiest core's compute.
        assert!(est.interconnect_cycles > est.core_cycles);
        assert_eq!(est.effective_cycles, est.interconnect_cycles);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Partition::contiguous(10, 0);
    }

    #[test]
    fn empty_graph_partitions_to_empty_assignment() {
        let g = sachi_ising::graph::GraphBuilder::new(0)
            .build()
            .expect("empty graph");
        for p in [Partition::contiguous(0, 4), Partition::interleaved(0, 4)] {
            assert_eq!(p.cores(), 4);
            assert_eq!(p.core_sizes(), vec![0, 0, 0, 0]);
            assert_eq!(p.cut_edges(&g), 0);
        }
    }

    #[test]
    fn interleaved_edge_cases_match_contiguous_contract() {
        // n == 0: empty assignment, every core owns zero spins, and the
        // surplus cores still appear (with zero) in core_sizes.
        for cores in [1usize, 3, 16] {
            let p = Partition::interleaved(0, cores);
            assert_eq!(p.cores(), cores);
            assert_eq!(p.core_sizes(), vec![0u64; cores]);
        }
        // cores > n: the first n cores own one spin each, core_of is
        // total over 0..n, and the mapping is exactly i % cores.
        for (n, cores) in [(1usize, 5usize), (2, 64), (4, 5)] {
            let p = Partition::interleaved(n, cores);
            let sizes = p.core_sizes();
            assert_eq!(sizes.len(), cores);
            for i in 0..n {
                assert_eq!(
                    p.core_of(i) as usize,
                    i % cores,
                    "n={n} cores={cores} i={i}"
                );
            }
            for (c, &s) in sizes.iter().enumerate() {
                assert_eq!(s, u64::from(c < n), "n={n} cores={cores} core={c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn interleaved_rejects_zero_cores() {
        let _ = Partition::interleaved(8, 0);
    }

    #[test]
    fn fewer_spins_than_cores_stays_in_range_and_balanced() {
        for (n, cores) in [(1usize, 2usize), (3, 8), (5, 7), (7, 8)] {
            for p in [
                Partition::contiguous(n, cores),
                Partition::interleaved(n, cores),
            ] {
                let sizes = p.core_sizes();
                assert_eq!(sizes.len(), cores);
                assert_eq!(sizes.iter().sum::<u64>(), n as u64);
                // Every spin maps to a valid core, one spin per core at
                // most when n < cores.
                assert!(sizes.iter().all(|&s| s <= 1), "{n}/{cores}: {sizes:?}");
                for i in 0..n {
                    assert!((p.core_of(i) as usize) < cores);
                }
            }
        }
    }

    #[test]
    fn contiguous_never_cuts_more_lattice_edges_than_interleaved() {
        // Cut-size monotonicity on a locality-rich lattice: at every
        // core count, the contiguous partition's cut is no larger than
        // the interleaved one's, and the contiguous cut grows
        // monotonically with the core count (more seams, never fewer).
        let g = topology::king(24, 24, |_, _| 1).unwrap();
        let n = g.num_spins();
        let mut last_contiguous = 0u64;
        for cores in [1usize, 2, 3, 4, 6, 8, 16] {
            let cc = Partition::contiguous(n, cores).cut_edges(&g);
            let ic = Partition::interleaved(n, cores).cut_edges(&g);
            assert!(
                cc <= ic,
                "{cores} cores: contiguous {cc} > interleaved {ic}"
            );
            assert!(
                cc >= last_contiguous,
                "{cores} cores: cut {cc} fell below {last_contiguous}"
            );
            last_contiguous = cc;
        }
    }
}
