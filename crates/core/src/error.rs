//! The workspace error taxonomy and its process exit-code mapping.
//!
//! The CLI used to stringify every failure and exit 1; scripting around
//! it (CI smoke tests, sweep harnesses) could not tell a typo from a
//! solver failure from a fault-injection outcome. [`SachiError`]
//! classifies failures, and [`SachiError::exit_code`] maps the classes
//! onto distinct process exit codes:
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 0    | success                                             |
//! | 2    | usage / parse / I/O / configuration error           |
//! | 3    | solve failure                                       |
//! | 4    | fault outcome (fail-fast detection, budget spent)   |
//! | 5    | server-side rejection (queue full, deadline, drain) |
//!
//! Exit code 1 is deliberately unused: it is what a panic-turned-abort
//! produces, so scripts can distinguish "SACHI reported an error" from
//! "SACHI crashed".
//!
//! The same numbers double as the `sachi serve` wire-protocol error
//! codes (a `submit` client exits with the code it received), so one
//! table covers both the one-shot CLI and the daemon.

use std::fmt;

/// Why the `sachi serve` daemon rejected a request server-side. These
/// are *service* conditions — the job itself may be perfectly valid —
/// so they get their own class (code 5) distinct from usage errors
/// (code 2, the job can never work) and solve failures (code 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReason {
    /// The admission queue is at capacity; retry later (backpressure).
    QueueFull,
    /// The wall-clock admission deadline expired before a worker
    /// started the job.
    DeadlineExpired,
    /// The daemon is draining; no new admissions.
    ShuttingDown,
    /// The job exceeds a server-side admission limit (size, restarts,
    /// step budget).
    OverLimit,
}

impl ServerReason {
    /// Stable machine-readable label used in wire responses.
    pub fn label(self) -> &'static str {
        match self {
            ServerReason::QueueFull => "queue-full",
            ServerReason::DeadlineExpired => "deadline-expired",
            ServerReason::ShuttingDown => "shutting-down",
            ServerReason::OverLimit => "over-limit",
        }
    }
}

/// Classified failure of a SACHI pipeline entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SachiError {
    /// Bad command-line usage (unknown flag, missing value).
    Usage(String),
    /// Malformed input file (GSet/DIMACS parse failure).
    Parse(String),
    /// Filesystem error reading input.
    Io(String),
    /// Invalid configuration (bad resolution, bad geometry).
    Config(String),
    /// The solve itself failed.
    Solve(String),
    /// A fail-fast policy aborted on detected faults.
    FaultDetected {
        /// Parity detections that triggered the abort.
        detected: u64,
    },
    /// Every replica exhausted its fault-recovery budget.
    FaultBudgetExhausted {
        /// Replicas flagged degraded.
        degraded: u64,
        /// Replicas run.
        replicas: u64,
    },
    /// The `sachi serve` daemon rejected the request server-side.
    Server {
        /// Machine-readable rejection reason.
        reason: ServerReason,
        /// Human-readable detail for the response body.
        message: String,
    },
}

impl SachiError {
    /// The process exit code for this error class. Doubles as the
    /// `sachi serve` wire-protocol error code.
    pub fn exit_code(&self) -> u8 {
        match self {
            SachiError::Usage(_)
            | SachiError::Parse(_)
            | SachiError::Io(_)
            | SachiError::Config(_) => 2,
            SachiError::Solve(_) => 3,
            SachiError::FaultDetected { .. } | SachiError::FaultBudgetExhausted { .. } => 4,
            SachiError::Server { .. } => 5,
        }
    }

    /// Stable class label used in wire responses (`"usage"`, `"parse"`,
    /// `"io"`, `"config"`, `"solve"`, `"fault"`, `"server"`).
    pub fn class(&self) -> &'static str {
        match self {
            SachiError::Usage(_) => "usage",
            SachiError::Parse(_) => "parse",
            SachiError::Io(_) => "io",
            SachiError::Config(_) => "config",
            SachiError::Solve(_) => "solve",
            SachiError::FaultDetected { .. } | SachiError::FaultBudgetExhausted { .. } => "fault",
            SachiError::Server { .. } => "server",
        }
    }

    /// Convenience constructor for the server-side class.
    pub fn server(reason: ServerReason, message: impl Into<String>) -> Self {
        SachiError::Server {
            reason,
            message: message.into(),
        }
    }
}

impl fmt::Display for SachiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SachiError::Usage(msg) => write!(f, "usage error: {msg}"),
            SachiError::Parse(msg) => write!(f, "parse error: {msg}"),
            SachiError::Io(msg) => write!(f, "io error: {msg}"),
            SachiError::Config(msg) => write!(f, "configuration error: {msg}"),
            SachiError::Solve(msg) => write!(f, "solve failed: {msg}"),
            SachiError::FaultDetected { detected } => write!(
                f,
                "aborted by fail-fast recovery policy: {detected} fault(s) detected"
            ),
            SachiError::FaultBudgetExhausted { degraded, replicas } => write!(
                f,
                "fault-recovery budget exhausted: all {degraded}/{replicas} replicas degraded"
            ),
            SachiError::Server { reason, message } => {
                write!(f, "server rejected ({}): {message}", reason.label())
            }
        }
    }
}

impl std::error::Error for SachiError {}

impl From<sachi_workloads::encode::EncodeError> for SachiError {
    /// Workload-encoding failures (coefficient overflow, malformed
    /// graph) are configuration errors: the instance cannot be
    /// represented, so the process exits 2.
    fn from(e: sachi_workloads::encode::EncodeError) -> Self {
        SachiError::Config(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_partition_the_classes() {
        assert_eq!(SachiError::Usage("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Parse("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Io("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Config("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Solve("x".into()).exit_code(), 3);
        assert_eq!(SachiError::FaultDetected { detected: 1 }.exit_code(), 4);
        assert_eq!(
            SachiError::FaultBudgetExhausted {
                degraded: 2,
                replicas: 2
            }
            .exit_code(),
            4
        );
        assert_eq!(
            SachiError::server(ServerReason::QueueFull, "x").exit_code(),
            5
        );
    }

    #[test]
    fn class_labels_match_the_wire_protocol_table() {
        assert_eq!(SachiError::Usage("x".into()).class(), "usage");
        assert_eq!(SachiError::Parse("x".into()).class(), "parse");
        assert_eq!(SachiError::Io("x".into()).class(), "io");
        assert_eq!(SachiError::Config("x".into()).class(), "config");
        assert_eq!(SachiError::Solve("x".into()).class(), "solve");
        assert_eq!(SachiError::FaultDetected { detected: 1 }.class(), "fault");
        assert_eq!(
            SachiError::server(ServerReason::ShuttingDown, "x").class(),
            "server"
        );
    }

    #[test]
    fn server_reason_labels_are_stable() {
        assert_eq!(ServerReason::QueueFull.label(), "queue-full");
        assert_eq!(ServerReason::DeadlineExpired.label(), "deadline-expired");
        assert_eq!(ServerReason::ShuttingDown.label(), "shutting-down");
        assert_eq!(ServerReason::OverLimit.label(), "over-limit");
        let e = SachiError::server(ServerReason::DeadlineExpired, "10000 ms admission window");
        assert_eq!(
            e.to_string(),
            "server rejected (deadline-expired): 10000 ms admission window"
        );
    }

    #[test]
    fn encode_errors_map_to_config_exit_2() {
        let e = SachiError::from(sachi_workloads::encode::EncodeError::CoefficientOverflow {
            what: "coupling",
            value: 1 << 40,
        });
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(&e, SachiError::Config(msg) if msg.contains("coupling")));
    }

    #[test]
    fn display_renders_the_class_and_detail() {
        let e = SachiError::Parse("line 3: bad edge".into());
        assert_eq!(e.to_string(), "parse error: line 3: bad edge");
        let e = SachiError::FaultDetected { detected: 7 };
        assert!(e.to_string().contains("fail-fast"));
        assert!(e.to_string().contains('7'));
        let e = SachiError::FaultBudgetExhausted {
            degraded: 4,
            replicas: 4,
        };
        assert!(e.to_string().contains("4/4"));
    }
}
