//! The workspace error taxonomy and its process exit-code mapping.
//!
//! The CLI used to stringify every failure and exit 1; scripting around
//! it (CI smoke tests, sweep harnesses) could not tell a typo from a
//! solver failure from a fault-injection outcome. [`SachiError`]
//! classifies failures, and [`SachiError::exit_code`] maps the classes
//! onto distinct process exit codes:
//!
//! | code | meaning                                             |
//! |------|-----------------------------------------------------|
//! | 0    | success                                             |
//! | 2    | usage / parse / I/O / configuration error           |
//! | 3    | solve failure                                       |
//! | 4    | fault outcome (fail-fast detection, budget spent)   |
//!
//! Exit code 1 is deliberately unused: it is what a panic-turned-abort
//! produces, so scripts can distinguish "SACHI reported an error" from
//! "SACHI crashed".

use std::fmt;

/// Classified failure of a SACHI pipeline entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SachiError {
    /// Bad command-line usage (unknown flag, missing value).
    Usage(String),
    /// Malformed input file (GSet/DIMACS parse failure).
    Parse(String),
    /// Filesystem error reading input.
    Io(String),
    /// Invalid configuration (bad resolution, bad geometry).
    Config(String),
    /// The solve itself failed.
    Solve(String),
    /// A fail-fast policy aborted on detected faults.
    FaultDetected {
        /// Parity detections that triggered the abort.
        detected: u64,
    },
    /// Every replica exhausted its fault-recovery budget.
    FaultBudgetExhausted {
        /// Replicas flagged degraded.
        degraded: u64,
        /// Replicas run.
        replicas: u64,
    },
}

impl SachiError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> u8 {
        match self {
            SachiError::Usage(_)
            | SachiError::Parse(_)
            | SachiError::Io(_)
            | SachiError::Config(_) => 2,
            SachiError::Solve(_) => 3,
            SachiError::FaultDetected { .. } | SachiError::FaultBudgetExhausted { .. } => 4,
        }
    }
}

impl fmt::Display for SachiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SachiError::Usage(msg) => write!(f, "usage error: {msg}"),
            SachiError::Parse(msg) => write!(f, "parse error: {msg}"),
            SachiError::Io(msg) => write!(f, "io error: {msg}"),
            SachiError::Config(msg) => write!(f, "configuration error: {msg}"),
            SachiError::Solve(msg) => write!(f, "solve failed: {msg}"),
            SachiError::FaultDetected { detected } => write!(
                f,
                "aborted by fail-fast recovery policy: {detected} fault(s) detected"
            ),
            SachiError::FaultBudgetExhausted { degraded, replicas } => write!(
                f,
                "fault-recovery budget exhausted: all {degraded}/{replicas} replicas degraded"
            ),
        }
    }
}

impl std::error::Error for SachiError {}

impl From<sachi_workloads::encode::EncodeError> for SachiError {
    /// Workload-encoding failures (coefficient overflow, malformed
    /// graph) are configuration errors: the instance cannot be
    /// represented, so the process exits 2.
    fn from(e: sachi_workloads::encode::EncodeError) -> Self {
        SachiError::Config(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_partition_the_classes() {
        assert_eq!(SachiError::Usage("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Parse("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Io("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Config("x".into()).exit_code(), 2);
        assert_eq!(SachiError::Solve("x".into()).exit_code(), 3);
        assert_eq!(SachiError::FaultDetected { detected: 1 }.exit_code(), 4);
        assert_eq!(
            SachiError::FaultBudgetExhausted {
                degraded: 2,
                replicas: 2
            }
            .exit_code(),
            4
        );
    }

    #[test]
    fn encode_errors_map_to_config_exit_2() {
        let e = SachiError::from(sachi_workloads::encode::EncodeError::CoefficientOverflow {
            what: "coupling",
            value: 1 << 40,
        });
        assert_eq!(e.exit_code(), 2);
        assert!(matches!(&e, SachiError::Config(msg) if msg.contains("coupling")));
    }

    #[test]
    fn display_renders_the_class_and_detail() {
        let e = SachiError::Parse("line 3: bad edge".into());
        assert_eq!(e.to_string(), "parse error: line 3: bad edge");
        let e = SachiError::FaultDetected { detected: 7 };
        assert!(e.to_string().contains("fail-fast"));
        assert!(e.to_string().contains('7'));
        let e = SachiError::FaultBudgetExhausted {
            degraded: 4,
            replicas: 4,
        };
        assert!(e.to_string().contains("4/4"));
    }
}
