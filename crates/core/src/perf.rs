//! Closed-form performance/energy model.
//!
//! Figs. 15, 17 and 18 of the paper sweep to a million spins — far beyond
//! what a functional bit-level simulation should chew through. Because
//! SACHI's access patterns are fully structured, its cycle counts are a
//! deterministic function of the workload *shape* (spins, `N`, `R`) and
//! the geometry; [`PerfModel`] evaluates exactly the arithmetic the
//! functional [`crate::machine::SachiMachine`] performs, and the test
//! suite pins the two against each other on uniform-degree graphs (the
//! licence for using the model at scale — verification strategy #3 in
//! DESIGN.md).

use crate::config::SachiConfig;
use crate::designs::stationarity;
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::units::convert::{approx_f64, count_u64, scale_by_fraction};
use sachi_mem::units::{Bits, Cycles, Nanoseconds};
use sachi_workloads::spec::WorkloadShape;

/// Per-iteration (per-sweep) estimate for a workload shape.
#[derive(Debug, Clone)]
pub struct IterationEstimate {
    /// Compute-array cycles per sweep (tile-parallel critical path).
    pub compute_cycles: Cycles,
    /// Loading cycles per sweep (storage→compute + DRAM), before overlap.
    pub load_cycles: Cycles,
    /// Critical-path cycles per sweep with prefetch overlap — the paper's
    /// CPI metric.
    pub effective_cycles: Cycles,
    /// Compute-array rounds per sweep.
    pub rounds: u64,
    /// Whether the whole problem is resident in the compute array.
    pub fits_in_compute: bool,
    /// Whether rounds must stream from DRAM (storage array too small).
    pub uses_dram: bool,
    /// Energy per sweep.
    pub energy: EnergyLedger,
    /// Maximum reuse of the configured design at this shape.
    pub reuse: u64,
}

/// Whole-solve estimate.
#[derive(Debug, Clone)]
pub struct SolveEstimate {
    /// Iterations assumed.
    pub iterations: u64,
    /// Total cycles including the initial DRAM placement and first-sweep
    /// fills.
    pub total_cycles: Cycles,
    /// Total energy.
    pub energy: EnergyLedger,
    /// Wall-clock time at the configured cycle time.
    pub wall_time: Nanoseconds,
}

/// The analytic model for one configuration.
#[derive(Debug, Clone)]
pub struct PerfModel {
    config: SachiConfig,
    /// Flip fraction assumed for update-path energy (the functional
    /// machine measures it; the analytic model must assume one).
    assumed_flip_fraction: f64,
}

impl PerfModel {
    /// Creates a model for a configuration.
    pub fn new(config: SachiConfig) -> Self {
        PerfModel {
            config,
            assumed_flip_fraction: 0.05,
        }
    }

    /// The configuration being modeled.
    pub fn config(&self) -> &SachiConfig {
        &self.config
    }

    /// Overrides the assumed flip fraction used for update-path energy.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is within `[0, 1]`.
    #[must_use]
    pub fn with_flip_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "flip fraction must be in [0, 1]"
        );
        self.assumed_flip_fraction = fraction;
        self
    }

    /// Tuple storage bits in the storage array (Fig. 7a layout) for one
    /// tuple of this shape.
    fn tuple_storage_bits(shape: &WorkloadShape) -> u64 {
        shape.tuple_bits()
    }

    /// Estimates one sweep of the given shape.
    pub fn iteration(&self, shape: &WorkloadShape) -> IterationEstimate {
        let design = stationarity(self.config.design);
        let tech = &self.config.tech;
        let geometry = self.config.hierarchy.compute;
        let storage = self.config.hierarchy.storage;
        let n = shape.neighbors_per_spin;
        let r = shape.resolution_bits;
        let spins = shape.spins;
        let row_bits = count_u64(geometry.row_bits());
        let tiles = count_u64(geometry.tiles());
        let banks = count_u64(self.config.bank_count);

        let per_tuple = design.phase1_cycles(n, r, row_bits).max(1);
        let resident = design.resident_bits_per_tuple(n, r).max(1);
        let fill = design.idle_cycles(n, r) + 3;

        let capacity_bits = geometry.total_bits().get();
        let capacity_tuples = (capacity_bits / resident).max(1);
        let rounds = spins.div_ceil(capacity_tuples).max(1);
        let fits_in_compute = rounds == 1;

        // Chunk sizes: full chunks of `capacity_tuples`, then a remainder.
        let full_chunks = spins / capacity_tuples;
        let remainder = spins % capacity_tuples;
        let chunk_compute = |len: u64| -> u64 {
            if len == 0 {
                0
            } else {
                len.div_ceil(tiles) * per_tuple + fill
            }
        };
        let compute_per_sweep: u64 =
            full_chunks * chunk_compute(capacity_tuples) + chunk_compute(remainder);

        // Loading per chunk (only charged per-sweep when reloads happen).
        let storage_bits_total = spins * Self::tuple_storage_bits(shape) + spins * n; // tuples + adjacency
        let uses_dram = storage_bits_total > storage.total_bits().get();
        // DRAM -> storage streaming is fully hidden by the Sec. IV.A
        // prefetcher ("timely arrival of DRAM-requested data"); with the
        // prefetcher ablated it serializes onto the round.
        let chunk_load = |len: u64| -> u64 {
            if len == 0 {
                return 0;
            }
            let resident_bits = len * resident;
            let rows = resident_bits.div_ceil(row_bits);
            // A B-bank array uploads B rows per cycle — mirrors
            // `TileParams::upload_cycles` in the functional machine.
            let l2 = tech.storage_to_compute_cycles().get() + rows.div_ceil(banks);
            if uses_dram && !self.config.prefetch {
                let dram = tech.dram_stream_cycles(
                    Bits::new(len * Self::tuple_storage_bits(shape)).to_bytes_ceil(),
                );
                l2 + dram.get()
            } else {
                l2
            }
        };
        let load_per_sweep: u64 = if rounds > 1 {
            full_chunks * chunk_load(capacity_tuples) + chunk_load(remainder)
        } else {
            0
        };

        // Effective critical path with the prefetcher overlapping each
        // round's load against its compute.
        let effective: u64 = if rounds == 1 {
            compute_per_sweep
        } else if self.config.prefetch {
            full_chunks * chunk_compute(capacity_tuples).max(chunk_load(capacity_tuples))
                + chunk_compute(remainder).max(chunk_load(remainder))
        } else {
            compute_per_sweep + load_per_sweep
        };

        // --- energy per sweep ---
        let mut energy = EnergyLedger::new();
        let accesses = spins * per_tuple;
        energy.record(
            EnergyComponent::RwlDrive,
            tech.rwl_energy_per_bit() * (2 * accesses),
        );
        // Expected discharges: half of the active window per access.
        let active_bits_per_access: u64 = match self.config.design {
            crate::config::DesignKind::N1a | crate::config::DesignKind::N1b => n.max(1),
            crate::config::DesignKind::N2 => u64::from(r),
            crate::config::DesignKind::N3 => (n * (u64::from(r) + 1)).div_ceil(per_tuple),
        };
        energy.record(
            EnergyComponent::RblDischarge,
            tech.rbl_energy_per_bit() * (approx_f64(accesses * active_bits_per_access) * 0.5),
        );
        let driven = spins * design.driven_bits_per_tuple(n, r, row_bits);
        energy.record(
            EnergyComponent::DataMovement,
            tech.movement_energy_per_bit() * driven,
        );
        if uses_dram {
            // Driven data that the storage array cannot hold re-streams
            // from DRAM every sweep — reuse directly shrinks this term.
            energy.record(
                EnergyComponent::DramAccess,
                tech.movement_energy_per_bit() * driven,
            );
        }
        energy.record(
            EnergyComponent::NearMemoryAdd,
            tech.adder_energy_per_bit() * (spins * n * (u64::from(r) + 2)),
        );
        energy.record(
            EnergyComponent::DecisionLogic,
            tech.adder_energy_per_bit() * (spins * n.max(1)),
        );
        energy.record(
            EnergyComponent::Annealer,
            tech.annealer_energy_per_decision() * spins,
        );
        if rounds > 1 {
            let reload_bits = spins * resident;
            energy.record(
                EnergyComponent::DataMovement,
                tech.movement_energy_per_bit() * reload_bits,
            );
            energy.record(
                EnergyComponent::SramWrite,
                tech.sram_write_energy_per_bit() * reload_bits,
            );
            if uses_dram {
                energy.record(
                    EnergyComponent::DramAccess,
                    tech.movement_energy_per_bit() * (spins * Self::tuple_storage_bits(shape)),
                );
            }
        }
        // Update path at the assumed flip rate: adjacency read + copy
        // writes (a spin has ~n copies).
        let flips = scale_by_fraction(spins, self.assumed_flip_fraction);
        let copies = flips * n;
        energy.record(
            EnergyComponent::SramRead,
            tech.rbl_energy_per_bit() * copies,
        );
        energy.record(
            EnergyComponent::SramWrite,
            tech.sram_write_energy_per_bit() * copies,
        );
        energy.record(
            EnergyComponent::DataMovement,
            tech.movement_energy_per_bit() * flips,
        );

        IterationEstimate {
            compute_cycles: Cycles::new(compute_per_sweep),
            load_cycles: Cycles::new(load_per_sweep),
            effective_cycles: Cycles::new(effective),
            rounds,
            fits_in_compute,
            uses_dram,
            energy,
            reuse: design.max_reuse(n, r),
        }
    }

    /// Estimates a whole solve of `iterations` sweeps, including the
    /// initial DRAM placement and first-sweep fill.
    pub fn solve(&self, shape: &WorkloadShape, iterations: u64) -> SolveEstimate {
        let tech = &self.config.tech;
        let iter = self.iteration(shape);
        let storage_bits_total =
            shape.spins * Self::tuple_storage_bits(shape) + shape.spins * shape.neighbors_per_spin;
        let initial_store = tech.dram_stream_cycles(Bits::new(storage_bits_total).to_bytes_ceil());

        // First sweep additionally pays its (serial) first-round load even
        // when everything fits.
        let resident = stationarity(self.config.design)
            .resident_bits_per_tuple(shape.neighbors_per_spin, shape.resolution_bits)
            .max(1);
        let first_fill_bits =
            (shape.spins * resident).min(self.config.hierarchy.compute.total_bits().get());
        let first_fill_rows =
            first_fill_bits.div_ceil(count_u64(self.config.hierarchy.compute.row_bits()));
        let first_fill = tech.storage_to_compute_cycles().get()
            + first_fill_rows.div_ceil(count_u64(self.config.bank_count));

        let total = initial_store
            + Cycles::new(first_fill)
            + Cycles::new(iter.effective_cycles.get() * iterations.max(1));

        let mut energy = EnergyLedger::new();
        energy.record(
            EnergyComponent::DramAccess,
            tech.movement_energy_per_bit() * storage_bits_total,
        );
        energy.record(
            EnergyComponent::DataMovement,
            tech.movement_energy_per_bit() * first_fill_bits,
        );
        energy.record(
            EnergyComponent::SramWrite,
            tech.sram_write_energy_per_bit() * first_fill_bits,
        );
        for _ in 0..iterations {
            energy.merge(&iter.energy);
        }
        SolveEstimate {
            iterations,
            total_cycles: total,
            energy,
            wall_time: total.to_time(tech.cycle_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DesignKind, SachiConfig};
    use crate::machine::SachiMachine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::SolveOptions;
    use sachi_ising::spin::SpinVector;
    use sachi_mem::cache::{CacheGeometry, CacheHierarchy};

    /// The parity check that licenses the analytic model: on a
    /// uniform-degree graph the model's per-sweep compute cycles must
    /// equal the functional machine's.
    #[test]
    fn model_matches_machine_on_uniform_graph() {
        let n_spins = 12usize;
        let g = topology::complete(n_spins, |i, j| ((i + 2 * j) % 9) as i32 - 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let init = SpinVector::random(n_spins, &mut rng);
        let opts = SolveOptions::for_graph(&g, 3);
        for design in DesignKind::ALL {
            let config = SachiConfig::new(design);
            let mut machine = SachiMachine::new(config.clone());
            let (_, report) = machine.solve_detailed(&g, &init, &opts);
            let shape =
                WorkloadShape::new(n_spins as u64, (n_spins - 1) as u64, report.resolution_bits);
            let model = PerfModel::new(config);
            let est = model.iteration(&shape);
            assert_eq!(
                report.compute_cycles.get(),
                est.compute_cycles.get() * report.sweeps,
                "{design}: machine {} vs model {} x {} sweeps",
                report.compute_cycles,
                est.compute_cycles,
                report.sweeps
            );
        }
    }

    #[test]
    fn model_matches_machine_with_rounds() {
        // Force multiple rounds with a tiny compute array.
        let n_spins = 12usize;
        let g = topology::complete(n_spins, |i, j| ((i + j) % 5) as i32 + 1).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let init = SpinVector::random(n_spins, &mut rng);
        let opts = SolveOptions::for_graph(&g, 4);
        let small = CacheHierarchy {
            compute: CacheGeometry::new(2, 4, 64, 1),
            storage: CacheGeometry::sachi_storage_default(),
        };
        for design in DesignKind::ALL {
            let config = SachiConfig::new(design).with_hierarchy(small);
            let tech = config.tech.clone();
            let mut machine = SachiMachine::new(config.clone());
            let (_, report) = machine.solve_detailed(&g, &init, &opts);
            let shape =
                WorkloadShape::new(n_spins as u64, (n_spins - 1) as u64, report.resolution_bits);
            let est = PerfModel::new(config).iteration(&shape);
            assert_eq!(est.rounds, report.rounds_per_sweep, "{design} rounds");
            assert_eq!(
                report.compute_cycles.get(),
                est.compute_cycles.get() * report.sweeps,
                "{design} compute cycles"
            );
            // With rounds > 1 every sweep reloads (the model's per-sweep
            // load); with a single resident round only the sweep-0 fill
            // is paid, which the machine books but the per-sweep estimate
            // (correctly) reports as zero.
            let expected_load = if est.rounds > 1 {
                est.load_cycles.get() * report.sweeps
            } else {
                let resident = stationarity(design)
                    .resident_bits_per_tuple(shape.neighbors_per_spin, shape.resolution_bits)
                    .max(1);
                let rows = (shape.spins * resident).div_ceil(small.compute.row_bits() as u64);
                tech.storage_to_compute_cycles().get() + rows
            };
            assert_eq!(
                report.load_cycles.get(),
                expected_load,
                "{design} load cycles"
            );
        }
    }

    #[test]
    fn model_matches_banked_machine_with_rounds() {
        // Banking divides the per-round upload term; the analytic model
        // must track the metered machine exactly (the disc_drift 0.00%
        // contract) for any bank count, including non-divisors.
        let n_spins = 12usize;
        let g = topology::complete(n_spins, |i, j| ((i + j) % 5) as i32 + 1).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let init = SpinVector::random(n_spins, &mut rng);
        let opts = SolveOptions::for_graph(&g, 4);
        let small = CacheHierarchy {
            compute: CacheGeometry::new(2, 4, 64, 1),
            storage: CacheGeometry::sachi_storage_default(),
        };
        for banks in [2usize, 4, 7] {
            for design in DesignKind::ALL {
                let config = SachiConfig::new(design)
                    .with_hierarchy(small)
                    .with_banks(banks);
                let config_tech_storage_cycles = config.tech.storage_to_compute_cycles().get();
                let mut machine = SachiMachine::new(config.clone());
                let (_, report) = machine.solve_detailed(&g, &init, &opts);
                let shape = WorkloadShape::new(
                    n_spins as u64,
                    (n_spins - 1) as u64,
                    report.resolution_bits,
                );
                let est = PerfModel::new(config).iteration(&shape);
                assert_eq!(
                    est.rounds, report.rounds_per_sweep,
                    "{design} x{banks} rounds"
                );
                assert_eq!(
                    report.compute_cycles.get(),
                    est.compute_cycles.get() * report.sweeps,
                    "{design} x{banks} compute cycles"
                );
                // With rounds > 1 every sweep reloads; a single resident
                // round only pays the sweep-0 fill, which banking divides
                // the same way.
                let expected_load = if est.rounds > 1 {
                    est.load_cycles.get() * report.sweeps
                } else {
                    let resident = stationarity(design)
                        .resident_bits_per_tuple(shape.neighbors_per_spin, shape.resolution_bits)
                        .max(1);
                    let rows = (shape.spins * resident).div_ceil(small.compute.row_bits() as u64);
                    config_tech_storage_cycles + rows.div_ceil(banks as u64)
                };
                assert_eq!(
                    report.load_cycles.get(),
                    expected_load,
                    "{design} x{banks} load cycles"
                );
            }
        }
    }

    #[test]
    fn cpi_ordering_reproduces_fig17() {
        // At any size, CPI(n3) <= CPI(n2) <= CPI(n1b) <= CPI(n1a).
        let model = |k| PerfModel::new(SachiConfig::new(k));
        for spins in [500u64, 10_000, 1_000_000] {
            let shape = WorkloadShape::new(spins, 8, 4); // molecular dynamics
            let cpi = |k| model(k).iteration(&shape).effective_cycles.get();
            assert!(cpi(DesignKind::N3) <= cpi(DesignKind::N2), "{spins}");
            assert!(cpi(DesignKind::N2) <= cpi(DesignKind::N1b), "{spins}");
            assert!(cpi(DesignKind::N1b) <= cpi(DesignKind::N1a), "{spins}");
        }
    }

    #[test]
    fn cpi_grows_with_problem_size_and_overflow() {
        let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
        let small = model.iteration(&WorkloadShape::new(500, 8, 4));
        let large = model.iteration(&WorkloadShape::new(1_000_000, 8, 4));
        assert!(small.fits_in_compute);
        assert!(!large.fits_in_compute);
        assert!(large.rounds > 1);
        assert!(large.effective_cycles > small.effective_cycles);
        assert!(large.load_cycles > Cycles::ZERO);
    }

    #[test]
    fn n1_cpi_depends_on_resolution_n2_n3_do_not() {
        // Fig. 18: n1a/n1b improve with lower R; n2/n3 are flat (until R
        // affects row splits).
        let shape = |r| WorkloadShape::new(100_000, 8, r);
        for k in [DesignKind::N1a, DesignKind::N1b] {
            let m = PerfModel::new(SachiConfig::new(k));
            let lo = m.iteration(&shape(2)).compute_cycles.get();
            let hi = m.iteration(&shape(8)).compute_cycles.get();
            assert!(lo < hi, "{k}: {lo} !< {hi}");
        }
        let m2 = PerfModel::new(SachiConfig::new(DesignKind::N2));
        let lo2 = m2.iteration(&shape(2)).compute_cycles.get() as f64;
        let hi2 = m2.iteration(&shape(8)).compute_cycles.get() as f64;
        assert!(
            (hi2 - lo2).abs() / lo2 < 0.01,
            "n2 not flat: {lo2} vs {hi2}"
        );
        let m3 = PerfModel::new(SachiConfig::new(DesignKind::N3));
        // n3 stays within a row for King's graph at any R in 2..=8; only
        // the per-round fill count wobbles (higher R -> more rounds), so
        // require near-flatness rather than exact equality.
        let lo3 = m3.iteration(&shape(2)).compute_cycles.get() as f64;
        let hi3 = m3.iteration(&shape(8)).compute_cycles.get() as f64;
        assert!(
            (hi3 - lo3).abs() / lo3 < 0.01,
            "n3 not flat: {lo3} vs {hi3}"
        );
    }

    #[test]
    fn larger_caches_help_large_tsp() {
        // Sec. VII.2: the 64KB/1MB and 256KB/8MB presets speed up 1M-spin
        // TSP monotonically.
        let shape = WorkloadShape::new(1_000_000, 999, 5);
        let cpi = |h| {
            PerfModel::new(SachiConfig::new(DesignKind::N3).with_hierarchy(h))
                .iteration(&shape)
                .effective_cycles
                .get()
        };
        let base = cpi(CacheHierarchy::hpca_default());
        let desktop = cpi(CacheHierarchy::desktop());
        let server = cpi(CacheHierarchy::server());
        assert!(desktop < base, "desktop {desktop} !< base {base}");
        assert!(server < desktop, "server {server} !< desktop {desktop}");
        let speedup = base as f64 / server as f64;
        assert!(speedup > 2.0, "server speedup only {speedup:.1}x");
    }

    #[test]
    fn energy_ordering_matches_reuse() {
        // A resident-friendly shape (1K-pixel image segmentation): the
        // reuse ladder shows directly in the per-sweep energy.
        let shape = WorkloadShape::new(1_000, 48, 6);
        let e = |k| {
            PerfModel::new(SachiConfig::new(k))
                .iteration(&shape)
                .energy
                .total()
        };
        assert!(
            e(DesignKind::N3) < e(DesignKind::N2),
            "n3 {} !< n2 {}",
            e(DesignKind::N3),
            e(DesignKind::N2)
        );
        assert!(
            e(DesignKind::N2) < e(DesignKind::N1a),
            "n2 {} !< n1a {}",
            e(DesignKind::N2),
            e(DesignKind::N1a)
        );
        // At overflow scale the ordering still holds, now driven by DRAM
        // re-streaming of the non-stationary operands.
        let big = WorkloadShape::new(100_000, 48, 6);
        let eb = |k| {
            PerfModel::new(SachiConfig::new(k))
                .iteration(&big)
                .energy
                .total()
        };
        assert!(
            eb(DesignKind::N3) < eb(DesignKind::N1a),
            "n3 {} !< n1a {}",
            eb(DesignKind::N3),
            eb(DesignKind::N1a)
        );
    }

    #[test]
    fn solve_estimate_accumulates() {
        let model = PerfModel::new(SachiConfig::default());
        let shape = WorkloadShape::new(1_000, 8, 4);
        let one = model.solve(&shape, 1);
        let ten = model.solve(&shape, 10);
        assert!(ten.total_cycles > one.total_cycles);
        assert!(ten.energy.total() > one.energy.total());
        assert!(ten.wall_time.get() > one.wall_time.get());
        assert_eq!(ten.iterations, 10);
    }

    #[test]
    fn prefetch_ablation_increases_cpi() {
        let shape = WorkloadShape::new(1_000_000, 8, 4);
        let with = PerfModel::new(SachiConfig::new(DesignKind::N3)).iteration(&shape);
        let without =
            PerfModel::new(SachiConfig::new(DesignKind::N3).without_prefetch()).iteration(&shape);
        assert!(without.effective_cycles > with.effective_cycles);
        // Compute is unchanged; the ablated machine both exposes the DRAM
        // stream in its load and loses the load/compute overlap.
        assert_eq!(with.compute_cycles, without.compute_cycles);
        assert!(without.load_cycles >= with.load_cycles);
    }

    #[test]
    #[should_panic(expected = "flip fraction")]
    fn flip_fraction_validated() {
        let _ = PerfModel::new(SachiConfig::default()).with_flip_fraction(1.5);
    }
}
