//! The SACHI machine: functional, fully-accounted solves.
//!
//! [`SachiMachine`] executes the shared iterative protocol of
//! [`sachi_ising::solver`] with every `H_σ` computed *through the
//! hardware*: tuples laid into an 8T SRAM tile, word-lines pulsed, products
//! assembled from the sensed discharge pattern (bit-exact, enforced by a
//! debug assertion against the golden local field). Alongside the solve it
//! keeps the books the paper's evaluation needs: cycles (compute, loading,
//! DRAM, with prefetch overlap), a per-component energy ledger, reuse,
//! redundant discharges, queue occupancy, and update-path traffic.
//!
//! ### Accounting conventions
//!
//! * The scratch tile's *layout writes* are not billed per compute —
//!   resident data is written once per round, which the machine bills
//!   explicitly as reload traffic. Only the tile's word-line activations
//!   and bit-line discharges are harvested.
//! * Spin updates follow the Fig. 8b path: an adjacency read plus one
//!   copy-write per relevant tuple, billed to the storage array.
//! * When the problem exceeds the storage array, each round streams its
//!   chunk from DRAM (64 B/cycle) with the Sec. IV.A prefetcher
//!   overlapping the stream with compute.

use crate::config::{DesignKind, SachiConfig};
use crate::designs::{stationarity, ComputeContext, ComputeScratch};
use crate::encoding::MixedEncoding;
use crate::tuple::{TuplePlanes, TupleStore};
use sachi_ising::anneal::Annealer;
use sachi_ising::graph::IsingGraph;
use sachi_ising::hamiltonian::energy;
use sachi_ising::recovery::RecoveryPolicy;
use sachi_ising::solver::{decide_update, IterativeSolver, SolveOptions, SolveResult};
use sachi_ising::spin::SpinVector;
use sachi_mem::dram::{DramController, DramStats};
use sachi_mem::energy::{EnergyComponent, EnergyLedger};
use sachi_mem::fault::FaultInjector;
use sachi_mem::sram::{SramTile, TileParams, TileStats};
use sachi_mem::units::convert::{count_u64, ratio_u64, to_index};
use sachi_mem::units::{Bits, Cycles, Nanoseconds};
use sachi_obs::{MetricsRegistry, PhaseSpan, SolvePhase};

/// Fault-injection and recovery accounting of one solve.
///
/// All zeros (the `Default`) when the machine runs without a fault
/// profile — so existing report consumers are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Transient bit flips injected into tuple fetches (including
    /// re-fetches).
    pub injected_flips: u64,
    /// Tuple fetches that carried at least one injected flip.
    pub corrupted_fetches: u64,
    /// Corruptions caught by tuple-row parity (odd flip count).
    pub detected: u64,
    /// Corruptions that aliased past parity (even, non-zero flip count)
    /// and perturbed the computed local field.
    pub undetected: u64,
    /// Re-fetches performed by the `RefetchRetry` recovery policy.
    pub retries: u64,
    /// Cycles spent on recovery re-fetches (serialized onto the
    /// critical path — a re-fetch stalls the pipeline).
    pub refetch_cycles: Cycles,
    /// Bits corrupted in DRAM streams (count only; quality effects flow
    /// through the read-path BER).
    pub dram_corrupted_bits: u64,
    /// True if recovery gave up: a fail-fast abort, or a read that
    /// exhausted its re-fetch budget.
    pub degraded: bool,
}

impl FaultReport {
    /// Whether any fault activity happened at all.
    pub fn any_activity(&self) -> bool {
        self.injected_flips > 0
            || self.dram_corrupted_bits > 0
            || self.detected > 0
            || self.degraded
    }

    /// Exports the counters into `reg` under the `recovery_` prefix.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        reg.counter_add("recovery_injected_flips", self.injected_flips);
        reg.counter_add("recovery_corrupted_fetches", self.corrupted_fetches);
        reg.counter_add("recovery_detected", self.detected);
        reg.counter_add("recovery_undetected", self.undetected);
        reg.counter_add("recovery_retries", self.retries);
        reg.counter_add("recovery_refetch_cycles", self.refetch_cycles.get());
        reg.counter_add("recovery_dram_corrupted_bits", self.dram_corrupted_bits);
        reg.counter_add("recovery_degraded_replicas", u64::from(self.degraded));
    }
}

/// Architecture-level statistics of one solve.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Design that ran.
    pub design: DesignKind,
    /// IC resolution used.
    pub resolution_bits: u32,
    /// Sweeps (Hamiltonian iterations) executed.
    pub sweeps: u64,
    /// Compute-array rounds per sweep (1 when everything fits).
    pub rounds_per_sweep: u64,
    /// Pure compute-array cycles.
    pub compute_cycles: Cycles,
    /// Loading cycles (storage→compute movement, DRAM streaming) before
    /// prefetch overlap.
    pub load_cycles: Cycles,
    /// Critical-path cycles including overlap and the initial DRAM store.
    pub total_cycles: Cycles,
    /// Wall-clock time at the configured cycle time.
    pub wall_time: Nanoseconds,
    /// Per-component energy.
    pub energy: EnergyLedger,
    /// Achieved reuse: XNOR computes per RWL bit fetched.
    pub reuse: f64,
    /// Useful in-memory XNOR bit operations.
    pub xnor_ops: u64,
    /// Bits fetched from storage onto RWLs.
    pub rwl_bits_fetched: u64,
    /// Redundant bit-line discharges (Fig. 5c energy waste).
    pub redundant_discharges: u64,
    /// Peak XNOR-queue occupancy in bits.
    pub queue_peak_bits: u64,
    /// Tuple-copy writes made by the update path.
    pub spin_copy_updates: u64,
    /// Adjacency-matrix reads made by the update path.
    pub adjacency_reads: u64,
    /// Cross-tuple re-reads the no-tuple-rep ablation incurred (0 with
    /// tuple-rep on).
    pub cross_tuple_rereads: u64,
    /// Prefetches issued by the DRAM controller.
    pub prefetches: u64,
    /// Fault-injection and recovery accounting (all zeros without a
    /// fault profile).
    pub faults: FaultReport,
    /// Annealer decisions served by the bit-plane fast path.
    pub fast_path_computes: u64,
    /// Annealer decisions served by the scalar reference path (pinned
    /// by a non-inert fault profile).
    pub scalar_path_computes: u64,
    /// Redundant spin-row rewrites elided by the scratch residency tag.
    pub skipped_spin_writes: u64,
    /// Raw SRAM tile counters (discharges, reads, writes).
    pub tile: TileStats,
    /// DRAM controller counters including prefetch lead/late accounting.
    pub dram: DramStats,
    /// Solve-phase spans, recorded only when
    /// [`crate::config::SachiConfig::trace_phases`] is set (empty — and
    /// unallocated — otherwise).
    pub phase_spans: Vec<PhaseSpan>,
}

impl RunReport {
    /// Cycles per Hamiltonian iteration — the paper's "CPI" metric
    /// (Figs. 17/18).
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.sweeps == 0 {
            return 0.0;
        }
        ratio_u64(self.total_cycles.get(), self.sweeps)
    }

    /// Exports the whole report into `reg`: `machine_` counters for the
    /// design-level accounting, plus the embedded SRAM (`sram_`), DRAM
    /// (`dram_`), recovery (`recovery_`) counters and energy gauges.
    /// Counters and histograms fold additively across replicas; gauges
    /// are per-run summaries the ensemble fold recomputes from counter
    /// sums afterwards.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter_add("machine_sweeps", self.sweeps);
        reg.counter_add("machine_compute_cycles", self.compute_cycles.get());
        reg.counter_add("machine_load_cycles", self.load_cycles.get());
        reg.counter_add("machine_total_cycles", self.total_cycles.get());
        reg.counter_add("machine_xnor_ops", self.xnor_ops);
        reg.counter_add("machine_rwl_bits_fetched", self.rwl_bits_fetched);
        reg.counter_add("machine_redundant_discharges", self.redundant_discharges);
        reg.counter_add("machine_spin_copy_updates", self.spin_copy_updates);
        reg.counter_add("machine_adjacency_reads", self.adjacency_reads);
        reg.counter_add("machine_cross_tuple_rereads", self.cross_tuple_rereads);
        reg.counter_add("machine_prefetches", self.prefetches);
        reg.counter_add("machine_fast_path_computes", self.fast_path_computes);
        reg.counter_add("machine_scalar_path_computes", self.scalar_path_computes);
        reg.counter_add("machine_skipped_spin_writes", self.skipped_spin_writes);
        reg.observe("machine_queue_peak_bits", self.queue_peak_bits);
        reg.observe("replica_total_cycles", self.total_cycles.get());
        reg.observe("replica_rounds_per_sweep", self.rounds_per_sweep);
        reg.gauge_set("machine_reuse", self.reuse);
        self.tile.export(reg);
        self.dram.export(reg);
        self.faults.export(reg);
        self.energy.export(reg);
    }

    /// Accumulates `other` — the report of a later solve segment of the
    /// *same* logical replica — into `self`.
    ///
    /// Parallel-tempering rungs run as a sequence of constant-temperature
    /// solve segments, each producing its own report; a rung's ledger
    /// entry is the segment-wise sum. Counters, cycles, wall-time, and
    /// energy add; `queue_peak_bits` takes the max (it is a peak, not a
    /// flow); `reuse` is recomputed from the summed XNOR/RWL totals;
    /// fault degradation is sticky (OR); `design`/`resolution_bits`
    /// describe the machine and must match.
    pub fn absorb(&mut self, other: &RunReport) {
        debug_assert_eq!(self.design, other.design, "segments share one machine");
        debug_assert_eq!(self.resolution_bits, other.resolution_bits);
        self.sweeps += other.sweeps;
        self.rounds_per_sweep = self.rounds_per_sweep.max(other.rounds_per_sweep);
        self.compute_cycles += other.compute_cycles;
        self.load_cycles += other.load_cycles;
        self.total_cycles += other.total_cycles;
        self.wall_time = self.wall_time + other.wall_time;
        self.energy.merge(&other.energy);
        self.xnor_ops += other.xnor_ops;
        self.rwl_bits_fetched += other.rwl_bits_fetched;
        self.reuse = if self.rwl_bits_fetched > 0 {
            ratio_u64(self.xnor_ops, self.rwl_bits_fetched)
        } else {
            0.0
        };
        self.redundant_discharges += other.redundant_discharges;
        self.queue_peak_bits = self.queue_peak_bits.max(other.queue_peak_bits);
        self.spin_copy_updates += other.spin_copy_updates;
        self.adjacency_reads += other.adjacency_reads;
        self.cross_tuple_rereads += other.cross_tuple_rereads;
        self.prefetches += other.prefetches;
        self.fast_path_computes += other.fast_path_computes;
        self.scalar_path_computes += other.scalar_path_computes;
        self.skipped_spin_writes += other.skipped_spin_writes;
        self.tile.rwl_activations += other.tile.rwl_activations;
        self.tile.rbl_discharges += other.tile.rbl_discharges;
        self.tile.redundant_discharges += other.tile.redundant_discharges;
        self.tile.bits_written += other.tile.bits_written;
        self.tile.bits_read += other.tile.bits_read;
        self.tile.compute_accesses += other.tile.compute_accesses;
        self.dram.loads += other.dram.loads;
        self.dram.bits_loaded += other.dram.bits_loaded;
        self.dram.prefetches_issued += other.dram.prefetches_issued;
        self.dram.prefetch_hidden_cycles += other.dram.prefetch_hidden_cycles;
        self.dram.prefetch_exposed_cycles += other.dram.prefetch_exposed_cycles;
        self.dram.prefetch_late_arrivals += other.dram.prefetch_late_arrivals;
        self.faults.injected_flips += other.faults.injected_flips;
        self.faults.corrupted_fetches += other.faults.corrupted_fetches;
        self.faults.detected += other.faults.detected;
        self.faults.undetected += other.faults.undetected;
        self.faults.retries += other.faults.retries;
        self.faults.refetch_cycles += other.faults.refetch_cycles;
        self.faults.dram_corrupted_bits += other.faults.dram_corrupted_bits;
        self.faults.degraded |= other.faults.degraded;
        self.phase_spans.extend(other.phase_spans.iter().cloned());
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} @ {}-bit: {} iterations x {} round(s)",
            self.design.label(),
            self.resolution_bits,
            self.sweeps,
            self.rounds_per_sweep
        )?;
        writeln!(
            f,
            "  cycles : {} total ({} compute, {} loading) = {}",
            self.total_cycles.get(),
            self.compute_cycles.get(),
            self.load_cycles.get(),
            self.wall_time
        )?;
        writeln!(
            f,
            "  energy : {} | reuse {:.1} ({} XNORs / {} RWL bits)",
            self.energy.total(),
            self.reuse,
            self.xnor_ops,
            self.rwl_bits_fetched
        )?;
        write!(
            f,
            "  update : {} copies, {} adjacency reads; queue peak {} bits; {} redundant discharges",
            self.spin_copy_updates,
            self.adjacency_reads,
            self.queue_peak_bits,
            self.redundant_discharges
        )?;
        if self.faults.any_activity() {
            write!(
                f,
                "\n  faults : {} flips / {} fetches ({} detected, {} undetected), {} retries, {} dram bits{}",
                self.faults.injected_flips,
                self.faults.corrupted_fetches,
                self.faults.detected,
                self.faults.undetected,
                self.faults.retries,
                self.faults.dram_corrupted_bits,
                if self.faults.degraded { "; DEGRADED" } else { "" }
            )?;
        }
        Ok(())
    }
}

/// A SACHI machine instance.
///
/// ```
/// use sachi_core::prelude::*;
/// use sachi_ising::prelude::*;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let graph = topology::king(4, 4, |_, _| 1)?;
/// let mut rng = StdRng::seed_from_u64(0);
/// let init = SpinVector::random(16, &mut rng);
/// let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
/// let (result, report) = machine.solve_detailed(&graph, &init, &SolveOptions::for_graph(&graph, 1));
/// assert!(result.converged);
/// assert!(report.total_cycles.get() > 0);
/// # Ok::<(), sachi_ising::graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SachiMachine {
    config: SachiConfig,
}

impl SachiMachine {
    /// Creates a machine from a configuration.
    pub fn new(config: SachiConfig) -> Self {
        SachiMachine { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SachiConfig {
        &self.config
    }

    /// Runs a solve and returns both the algorithmic result and the
    /// architecture report.
    ///
    /// # Panics
    ///
    /// Panics if the initial spin vector does not match the graph, or if a
    /// configured resolution override cannot represent the graph's
    /// coefficients (quantize the workload first).
    pub fn solve_detailed(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> (SolveResult, RunReport) {
        assert_eq!(
            initial.len(),
            graph.num_spins(),
            "initial spins must match graph size"
        );
        let required = graph.bits_required();
        let resolution = match self.config.resolution {
            Some(r) => {
                assert!(
                    r >= required,
                    "resolution override {r} cannot represent coefficients needing {required} bits; \
                     quantize the workload first"
                );
                r
            }
            None => required,
        };
        let enc = MixedEncoding::new(resolution).expect("resolution validated by config");
        let design = stationarity(self.config.design);
        let tech = &self.config.tech;
        let geometry = self.config.hierarchy.compute;
        let storage = self.config.hierarchy.storage;

        let mut spins = initial.clone();
        let mut tuples = TupleStore::with_tuple_rep(graph, &spins, self.config.tuple_rep);
        let mut annealer = Annealer::new(options.schedule, options.seed);
        let mut ledger = EnergyLedger::new();
        let mut ctx = ComputeContext::new();
        let mut dram = if self.config.prefetch {
            DramController::new(tech.clone())
        } else {
            DramController::new(tech.clone()).without_prefetch()
        };

        let n = graph.num_spins();
        let max_degree = graph.max_degree().max(1);
        let (tile_rows, tile_cols) =
            design.tile_requirements(max_degree, enc.bits(), geometry.row_bits());
        let tile_params = TileParams::new(tile_rows, tile_cols).with_banks(self.config.bank_count);
        let mut tile = SramTile::with_params(tile_params);
        // Per-machine scratch for the bit-plane fast path, hoisted out of
        // the sweep loop so the hot path never allocates. A non-inert
        // fault profile pins the scalar path: the injector's positional
        // RNG contract is defined against the scalar call sequence, and
        // PR 3's zero-rate-is-identity guarantee makes the selection
        // below provably unobservable.
        let mut scratch = ComputeScratch::new();
        let use_fast = self
            .config
            .fault
            .as_ref()
            .is_none_or(|profile| profile.model.is_inert());
        // SoA mirror of the tuple store: every encoded operand the fast
        // paths need, computed once here instead of per compute. The
        // scalar path (pinned by a non-inert fault profile) keeps reading
        // the AoS tuples, so the positional fault-RNG contract is
        // untouched.
        let mut soa = if use_fast {
            Some(TuplePlanes::new(&tuples, &enc).expect("encoding sized from graph coefficients"))
        } else {
            None
        };

        // Partition spins into compute-array rounds by resident footprint.
        let capacity_bits = geometry.total_bits().get();
        let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
        {
            let mut start = 0usize;
            let mut used = 0u64;
            for i in 0..n {
                let bits = design
                    .resident_bits_per_tuple(count_u64(graph.degree(i)), enc.bits())
                    .max(1);
                if used + bits > capacity_bits && i > start {
                    chunks.push(start..i);
                    start = i;
                    used = 0;
                }
                used += bits;
            }
            if start < n || n == 0 {
                chunks.push(start..n);
            }
        }
        let rounds_per_sweep = count_u64(chunks.len());

        // Storage-array pressure decides whether rounds stream from DRAM.
        let storage_bits_needed = tuples.total_storage_bits(enc.bits()) + tuples.adjacency_bits();
        let uses_dram = storage_bits_needed > storage.total_bits().get();

        // Initial placement of the whole problem into DRAM (phase (a) of
        // the Sec. V.5 cost model, charged to every machine).
        let mut total_cycles =
            tech.dram_stream_cycles(Bits::new(storage_bits_needed).to_bytes_ceil());
        ledger.record(
            EnergyComponent::DramAccess,
            tech.movement_energy_per_bit() * storage_bits_needed,
        );

        // Phase spans: cycle-domain timestamps from the accounting this
        // loop already maintains. `Vec::new` does not allocate, so a
        // disabled trace costs one branch per round and nothing else.
        let trace_phases = self.config.trace_phases;
        let mut spans: Vec<PhaseSpan> = Vec::new();
        if trace_phases {
            spans.push(PhaseSpan {
                phase: SolvePhase::Upload,
                sweep: 0,
                round: 0,
                start: 0,
                end: total_cycles.get(),
                events: 1,
            });
        }

        let mut compute_cycles = Cycles::ZERO;
        let mut load_cycles = Cycles::ZERO;
        let mut annealer_decisions = 0u64;
        let mut total_flips = 0u64;
        let mut sweeps = 0u64;
        let mut converged = false;
        let mut trace = Vec::new();
        let schedule_fill = design.idle_cycles(count_u64(max_degree), enc.bits()) + 3;
        // Per-tile cycle sums, hoisted out of the sweep loop (zeroed per
        // round) so the hot path never allocates.
        let num_tiles = geometry.tiles();
        let mut tile_sums = vec![0u64; num_tiles];

        // Fault layer: the injector's stream is salted with the solve
        // seed (the per-replica derived seed in an ensemble), so fault
        // sequences are a pure function of (master seed, fault seed,
        // replica index) — byte-identical at any thread count.
        let mut fault: Option<(FaultInjector, RecoveryPolicy)> = self
            .config
            .fault
            .as_ref()
            .map(|profile| (profile.model.injector(options.seed), profile.policy));
        let mut fault_report = FaultReport::default();
        let mut fail_fast = false;

        let max_sweeps = options.effective_max_sweeps(n);
        while sweeps < max_sweeps {
            // Job-level cancellation (the serve daemon's drain path):
            // stop at a sweep boundary, return the partial state.
            if options.is_cancelled() {
                break;
            }
            let mut flips_this_sweep = 0u64;
            for (round, chunk) in chunks.iter().enumerate() {
                let round_start = total_cycles;
                let flips_before_round = flips_this_sweep;
                let copies_before_round = tuples.spin_copy_updates();
                // --- loading for this round ---
                let chunk_resident: u64 = chunk
                    .clone()
                    .map(|i| design.resident_bits_per_tuple(count_u64(graph.degree(i)), enc.bits()))
                    .sum();
                let reload = sweeps == 0 || rounds_per_sweep > 1;
                let mut round_load = Cycles::ZERO;
                if reload && chunk_resident > 0 {
                    // Storage -> compute: fixed movement latency plus one
                    // row per cycle per bank — a B-bank array accepts B
                    // row uploads per cycle, so the upload of round k+1
                    // overlaps the H-compute of round k that much sooner.
                    let rows = chunk_resident.div_ceil(count_u64(geometry.row_bits()));
                    round_load = tech.storage_to_compute_cycles()
                        + Cycles::new(tile_params.upload_cycles(rows));
                    ledger.record(
                        EnergyComponent::DataMovement,
                        tech.movement_energy_per_bit() * chunk_resident,
                    );
                    ledger.record(
                        EnergyComponent::SramWrite,
                        tech.sram_write_energy_per_bit() * chunk_resident,
                    );
                    if uses_dram {
                        let chunk_storage: u64 = chunk
                            .clone()
                            .map(|i| tuples.tuple(i).storage_bits(enc.bits()))
                            .sum();
                        let dram_cycles = match fault.as_mut() {
                            Some((inj, _)) => {
                                let (cycles, corrupted) = dram.load_with_faults(
                                    Bits::new(chunk_storage),
                                    &mut ledger,
                                    inj,
                                );
                                fault_report.dram_corrupted_bits += corrupted;
                                cycles
                            }
                            None => dram.load(Bits::new(chunk_storage), &mut ledger),
                        };
                        // The Sec. IV.A prefetcher hides the DRAM stream
                        // entirely; without it, the stream serializes.
                        if !self.config.prefetch {
                            round_load += dram_cycles;
                        }
                    }
                }

                // --- compute for this round ---
                // Tiles process disjoint tuples concurrently; the round
                // takes as long as its busiest tile. SACHI(n1a) fills
                // tiles blockwise ("successive spins in the same tile"),
                // which is the load imbalance Fig. 17(iii) calls out;
                // n1b/n2/n3 interleave.
                let chunk_len = chunk.len().max(1);
                tile_sums.fill(0);
                for (pos, i) in chunk.clone().enumerate() {
                    let cycles_before_tuple = ctx.cycles;
                    let h_sigma = {
                        let tuple = tuples.tuple(i);
                        debug_assert!(
                            tuple
                                .neighbors
                                .iter()
                                .zip(tuple.neighbor_spins.iter())
                                .all(|(&j, &s)| s == spins.get(to_index(j))),
                            "tuple-rep copies stale at spin {i}: the Fig. 8b update path missed a refresh"
                        );
                        if let Some(planes) = soa.as_ref() {
                            design.compute_tuple_soa(
                                &mut tile,
                                &enc,
                                tuple,
                                planes.view(i),
                                spins.get(i),
                                &mut ctx,
                                &mut scratch,
                            )
                        } else {
                            design.compute_tuple(&mut tile, &enc, tuple, spins.get(i), &mut ctx)
                        }
                    };
                    let tuple_cycles = ctx.cycles - cycles_before_tuple;
                    let assigned = match self.config.design {
                        DesignKind::N1a => pos * num_tiles / chunk_len,
                        _ => pos % num_tiles,
                    };
                    tile_sums[assigned.min(num_tiles - 1)] += tuple_cycles;
                    debug_assert_eq!(
                        h_sigma,
                        sachi_ising::hamiltonian::local_field(graph, &spins, i),
                        "hardware H_σ diverged from golden model at spin {i}"
                    );
                    if !self.config.tuple_rep {
                        // Count the cross-tuple re-reads the ablation incurs.
                        tuples.local_field(i);
                    }
                    // --- fault injection + parity + recovery ---
                    // The hardware compute above is exact; faults strike
                    // the tuple-row *fetch*. One parity bit per tuple row
                    // (derived from the tuple-rep layout) catches every
                    // odd flip count; even non-zero counts alias past it
                    // and corrupt the computed local field.
                    let mut h_sigma = h_sigma;
                    if let Some((inj, policy)) = fault.as_mut() {
                        let tuple_bits = tuples.tuple(i).storage_bits(enc.bits());
                        let mut flips = inj.flips_in_read(tuple_bits);
                        let mut attempts = 0u32;
                        while flips % 2 == 1 {
                            fault_report.detected += 1;
                            match *policy {
                                RecoveryPolicy::FailFast => {
                                    fault_report.degraded = true;
                                    fail_fast = true;
                                    flips = 0;
                                }
                                RecoveryPolicy::RefetchRetry { max_retries } => {
                                    if attempts < max_retries {
                                        // Re-fetch the row: storage→compute
                                        // movement plus one row cycle,
                                        // serialized onto the critical path.
                                        attempts += 1;
                                        fault_report.retries += 1;
                                        fault_report.refetch_cycles +=
                                            tech.storage_to_compute_cycles() + Cycles::new(1);
                                        ledger.record(
                                            EnergyComponent::DataMovement,
                                            tech.movement_energy_per_bit() * tuple_bits,
                                        );
                                        ledger.record(
                                            EnergyComponent::SramWrite,
                                            tech.sram_write_energy_per_bit() * tuple_bits,
                                        );
                                        flips = inj.flips_in_read(tuple_bits);
                                        continue;
                                    }
                                    // Budget spent: scrub with a clean
                                    // (slow-path) refetch and carry on,
                                    // but the replica is flagged.
                                    fault_report.degraded = true;
                                    flips = 0;
                                }
                            }
                            break;
                        }
                        if fail_fast {
                            break;
                        }
                        if flips > 0 {
                            // Even flip count: parity aliases. The
                            // corruption lands on one neighbor slot of
                            // the tuple, inverting that product term.
                            fault_report.undetected += 1;
                            let t = tuples.tuple(i);
                            if !t.neighbors.is_empty() {
                                let slot = inj.pick_index(t.neighbors.len());
                                h_sigma -= 2
                                    * i64::from(t.couplings[slot])
                                    * t.neighbor_spins[slot].value();
                            }
                        }
                    }
                    let current = spins.get(i);
                    let new = decide_update(current, h_sigma, &mut annealer);
                    annealer_decisions += 1;
                    if new != current {
                        spins.set(i, new);
                        flips_this_sweep += 1;
                        // Fig. 8b update path: adjacency read + relevant
                        // tuple copy writes in the storage array.
                        let copies = tuples.update_spin(i, new);
                        if let Some(planes) = soa.as_mut() {
                            planes.writeback_spin(&tuples, i, new);
                        }
                        ledger.record(
                            EnergyComponent::SramRead,
                            tech.rbl_energy_per_bit() * copies,
                        );
                        ledger.record(
                            EnergyComponent::SramWrite,
                            tech.sram_write_energy_per_bit() * copies,
                        );
                        ledger.record(
                            EnergyComponent::DataMovement,
                            tech.movement_energy_per_bit() * 1u64,
                        );
                    }
                }
                let round_compute =
                    Cycles::new(tile_sums.iter().copied().max().unwrap_or(0) + schedule_fill);
                compute_cycles += round_compute;
                load_cycles += round_load;
                // The first round of the solve cannot overlap with anything;
                // later rounds overlap their (pre)load with compute.
                let serialized = sweeps == 0 && round == 0;
                if serialized {
                    total_cycles += round_load + round_compute;
                } else {
                    total_cycles += dram.effective_round_cycles(round_compute, round_load);
                }
                if trace_phases {
                    let round_no = count_u64(round);
                    let tuples_in_round = count_u64(chunk.len());
                    spans.push(PhaseSpan {
                        phase: SolvePhase::Round,
                        sweep: sweeps,
                        round: round_no,
                        start: round_start.get(),
                        end: total_cycles.get(),
                        events: tuples_in_round,
                    });
                    // In the serialized first round the load precedes
                    // compute; overlapped rounds start both together.
                    let compute_start = if serialized {
                        round_start + round_load
                    } else {
                        round_start
                    };
                    spans.push(PhaseSpan {
                        phase: SolvePhase::HCompute,
                        sweep: sweeps,
                        round: round_no,
                        start: compute_start.get(),
                        end: (compute_start + round_compute).get(),
                        events: tuples_in_round,
                    });
                    if round_load > Cycles::ZERO && self.config.prefetch && !serialized {
                        spans.push(PhaseSpan {
                            phase: SolvePhase::Prefetch,
                            sweep: sweeps,
                            round: round_no,
                            start: round_start.get(),
                            end: (round_start + round_load).get(),
                            events: 1,
                        });
                    }
                    spans.push(PhaseSpan {
                        phase: SolvePhase::Update,
                        sweep: sweeps,
                        round: round_no,
                        start: total_cycles.get(),
                        end: total_cycles.get(),
                        events: flips_this_sweep - flips_before_round,
                    });
                    let copies = tuples.spin_copy_updates() - copies_before_round;
                    if copies > 0 {
                        spans.push(PhaseSpan {
                            phase: SolvePhase::Writeback,
                            sweep: sweeps,
                            round: round_no,
                            start: total_cycles.get(),
                            end: total_cycles.get(),
                            events: copies,
                        });
                    }
                }
                if fail_fast {
                    break;
                }
            }
            if fail_fast {
                // Fail-fast abort: the partial sweep's cycles are booked,
                // but it does not count as a completed iteration.
                break;
            }

            sweeps += 1;
            total_flips += flips_this_sweep;
            if options.record_trace {
                trace.push(energy(graph, &spins));
            }
            let frozen = annealer.is_frozen();
            annealer.cool();
            if flips_this_sweep == 0 && frozen {
                converged = true;
                break;
            }
        }

        // Harvest the tile's compute events (layout writes intentionally
        // excluded — billed as reload traffic above).
        let stats = tile.stats();
        ledger.record(
            EnergyComponent::RwlDrive,
            tech.rwl_energy_per_bit() * stats.rwl_activations,
        );
        ledger.record(
            EnergyComponent::RblDischarge,
            tech.rbl_energy_per_bit() * stats.rbl_discharges,
        );
        ledger.record(
            EnergyComponent::DataMovement,
            tech.movement_energy_per_bit() * ctx.rwl_bits_fetched,
        );
        if uses_dram {
            // Driven data the storage array cannot cache re-streams from
            // DRAM every sweep.
            ledger.record(
                EnergyComponent::DramAccess,
                tech.movement_energy_per_bit() * ctx.rwl_bits_fetched,
            );
        }
        ledger.record(
            EnergyComponent::NearMemoryAdd,
            tech.adder_energy_per_bit() * ctx.adder_bit_ops,
        );
        ledger.record(
            EnergyComponent::DecisionLogic,
            tech.adder_energy_per_bit() * ctx.decisions,
        );
        ledger.record(
            EnergyComponent::Annealer,
            tech.annealer_energy_per_decision() * annealer_decisions,
        );

        // Recovery re-fetches stall the pipeline: they serialize onto
        // both the load tally and the critical path.
        if let Some((inj, _)) = fault.as_ref() {
            let counters = inj.counters();
            fault_report.injected_flips = counters.transient_flips;
            fault_report.corrupted_fetches = counters.reads_corrupted;
            load_cycles += fault_report.refetch_cycles;
            total_cycles += fault_report.refetch_cycles;
        }

        let report = RunReport {
            design: self.config.design,
            resolution_bits: enc.bits(),
            sweeps,
            rounds_per_sweep,
            compute_cycles,
            load_cycles,
            total_cycles,
            wall_time: total_cycles.to_time(tech.cycle_time),
            energy: ledger,
            reuse: ctx.reuse(),
            xnor_ops: ctx.xnor_ops,
            rwl_bits_fetched: ctx.rwl_bits_fetched,
            redundant_discharges: stats.redundant_discharges,
            queue_peak_bits: ctx.queue_peak_bits,
            spin_copy_updates: tuples.spin_copy_updates(),
            adjacency_reads: tuples.adjacency_reads(),
            cross_tuple_rereads: tuples.cross_tuple_rereads(),
            prefetches: dram.prefetches_issued(),
            faults: fault_report,
            fast_path_computes: if use_fast { annealer_decisions } else { 0 },
            scalar_path_computes: if use_fast { 0 } else { annealer_decisions },
            skipped_spin_writes: scratch.skipped_spin_writes,
            tile: *stats,
            dram: dram.stats(),
            phase_spans: spans,
        };
        let result = SolveResult {
            energy: energy(graph, &spins),
            spins,
            sweeps,
            flips: total_flips,
            converged,
            trace,
            uphill_accepted: annealer.uphill_accepted(),
            uphill_rejected: annealer.uphill_rejected(),
            degraded: fault_report.degraded,
        };
        (result, report)
    }
}

impl IterativeSolver for SachiMachine {
    fn solve(
        &mut self,
        graph: &IsingGraph,
        initial: &SpinVector,
        options: &SolveOptions,
    ) -> SolveResult {
        self.solve_detailed(graph, initial, options).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sachi_ising::graph::topology;
    use sachi_ising::solver::CpuReferenceSolver;
    use sachi_mem::cache::{CacheGeometry, CacheHierarchy};

    fn king_setup(seed: u64) -> (IsingGraph, SpinVector, SolveOptions) {
        let g = topology::king(5, 5, |i, j| ((i * 3 + j) % 7) as i32 + 1).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(25, &mut rng);
        let opts = SolveOptions::for_graph(&g, seed ^ 0xabc);
        (g, init, opts)
    }

    #[test]
    fn every_design_matches_the_golden_trajectory() {
        let (g, init, opts) = king_setup(3);
        let opts = opts.with_trace();
        let mut reference = CpuReferenceSolver::new();
        let golden = reference.solve(&g, &init, &opts);
        for design in DesignKind::ALL {
            let mut machine = SachiMachine::new(SachiConfig::new(design));
            let (result, report) = machine.solve_detailed(&g, &init, &opts);
            assert_eq!(result.energy, golden.energy, "{design} final energy");
            assert_eq!(result.trace, golden.trace, "{design} H trajectory");
            assert_eq!(result.sweeps, golden.sweeps, "{design} iteration count");
            assert_eq!(result.spins, golden.spins, "{design} spins");
            assert_eq!(report.sweeps, result.sweeps);
        }
    }

    #[test]
    fn designs_rank_by_cycles_and_reuse() {
        let (g, init, opts) = king_setup(7);
        let mut by_design = std::collections::BTreeMap::new();
        for design in DesignKind::ALL {
            let mut machine = SachiMachine::new(SachiConfig::new(design));
            let (_, report) = machine.solve_detailed(&g, &init, &opts);
            by_design.insert(design, report);
        }
        // Cycles: n3 < n2 < n1b <= n1a.
        assert!(
            by_design[&DesignKind::N3].compute_cycles < by_design[&DesignKind::N2].compute_cycles
        );
        assert!(
            by_design[&DesignKind::N2].compute_cycles < by_design[&DesignKind::N1b].compute_cycles
        );
        assert!(
            by_design[&DesignKind::N1b].compute_cycles
                <= by_design[&DesignKind::N1a].compute_cycles
        );
        // Reuse: n1 ~ 1, n2 ~ R, n3 ~ N*R.
        assert!(by_design[&DesignKind::N1a].reuse < 1.5);
        assert!(by_design[&DesignKind::N2].reuse > by_design[&DesignKind::N1a].reuse);
        assert!(by_design[&DesignKind::N3].reuse > by_design[&DesignKind::N2].reuse);
        // Queue only exists for n1.
        assert!(
            by_design[&DesignKind::N1a].queue_peak_bits
                > by_design[&DesignKind::N1b].queue_peak_bits
        );
        assert_eq!(by_design[&DesignKind::N3].queue_peak_bits, 0);
        // Redundant discharges are an n1 phenomenon.
        assert!(by_design[&DesignKind::N1a].redundant_discharges > 0);
        assert_eq!(by_design[&DesignKind::N3].redundant_discharges, 0);
        // Energy: the reuse-aware design wins.
        assert!(
            by_design[&DesignKind::N3].energy.total() < by_design[&DesignKind::N1a].energy.total(),
            "n3 {} vs n1a {}",
            by_design[&DesignKind::N3].energy.total(),
            by_design[&DesignKind::N1a].energy.total()
        );
    }

    #[test]
    fn tiny_compute_array_forces_rounds_and_reloads() {
        let (g, init, opts) = king_setup(11);
        // A compute array that holds only a few tuples.
        let small = CacheHierarchy {
            compute: CacheGeometry::new(1, 4, 64, 1),
            storage: CacheGeometry::sachi_storage_default(),
        };
        let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(small));
        let (result, report) = machine.solve_detailed(&g, &init, &opts);
        assert!(report.rounds_per_sweep > 1, "expected multiple rounds");
        assert!(report.load_cycles > Cycles::ZERO);
        // Functional result is unaffected by geometry.
        let mut reference = CpuReferenceSolver::new();
        let golden = reference.solve(&g, &init, &opts);
        assert_eq!(result.energy, golden.energy);
    }

    #[test]
    fn small_storage_array_streams_from_dram() {
        let (g, init, opts) = king_setup(13);
        let tiny_storage = CacheHierarchy {
            compute: CacheGeometry::new(1, 4, 64, 1),
            storage: CacheGeometry::new(1, 2, 64, 2),
        };
        let mut machine =
            SachiMachine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(tiny_storage));
        let (_, report) = machine.solve_detailed(&g, &init, &opts);
        assert!(report.energy.component(EnergyComponent::DramAccess).get() > 0.0);
        assert!(
            report.prefetches > 0,
            "prefetcher should fire on DRAM-streamed rounds"
        );
    }

    #[test]
    fn prefetch_shortens_critical_path() {
        let (g, init, opts) = king_setup(17);
        let small = CacheHierarchy {
            compute: CacheGeometry::new(1, 4, 64, 1),
            storage: CacheGeometry::new(1, 2, 64, 2),
        };
        let run = |prefetch: bool| {
            let config = if prefetch {
                SachiConfig::new(DesignKind::N2).with_hierarchy(small)
            } else {
                SachiConfig::new(DesignKind::N2)
                    .with_hierarchy(small)
                    .without_prefetch()
            };
            let mut machine = SachiMachine::new(config);
            machine.solve_detailed(&g, &init, &opts).1
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with.total_cycles < without.total_cycles,
            "prefetch {} !< no-prefetch {}",
            with.total_cycles,
            without.total_cycles
        );
        // Functional behavior identical either way.
        assert_eq!(with.sweeps, without.sweeps);
    }

    #[test]
    fn tuple_rep_ablation_counts_rereads() {
        let (g, init, opts) = king_setup(19);
        let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3).without_tuple_rep());
        let (_, report) = machine.solve_detailed(&g, &init, &opts);
        assert!(report.cross_tuple_rereads > 0);
        let mut with_rep = SachiMachine::new(SachiConfig::new(DesignKind::N3));
        let (_, rep_report) = with_rep.solve_detailed(&g, &init, &opts);
        assert_eq!(rep_report.cross_tuple_rereads, 0);
    }

    #[test]
    fn run_report_display_is_informative() {
        let (g, init, opts) = king_setup(31);
        let mut machine = SachiMachine::new(SachiConfig::default());
        let (_, report) = machine.solve_detailed(&g, &init, &opts);
        let text = format!("{report}");
        assert!(text.contains("SACHI(n3)"), "{text}");
        assert!(text.contains("iterations"), "{text}");
        assert!(text.contains("reuse"), "{text}");
        assert!(text.contains("cycles"), "{text}");
    }

    #[test]
    fn update_path_traffic_is_reported() {
        let (g, init, opts) = king_setup(23);
        let mut machine = SachiMachine::new(SachiConfig::default());
        let (result, report) = machine.solve_detailed(&g, &init, &opts);
        if result.flips > 0 {
            assert!(report.spin_copy_updates > 0);
            assert!(report.adjacency_reads > 0);
        }
        assert!(report.wall_time.get() > 0.0);
        assert!(report.cycles_per_iteration() > 0.0);
    }

    mod faults {
        use super::*;
        use crate::config::FaultProfile;
        use sachi_mem::fault::{FaultModel, FaultRate};

        fn profile(ber_ppb: u64, policy: RecoveryPolicy) -> FaultProfile {
            FaultProfile::new(FaultModel::new(0xFA17).with_read_ber(FaultRate::from_ppb(ber_ppb)))
                .with_policy(policy)
        }

        #[test]
        fn inert_profile_is_identity() {
            let (g, init, opts) = king_setup(41);
            let mut plain = SachiMachine::new(SachiConfig::new(DesignKind::N3));
            let mut faulted = SachiMachine::new(
                SachiConfig::new(DesignKind::N3)
                    .with_fault(FaultProfile::new(FaultModel::new(123))),
            );
            let (want, want_report) = plain.solve_detailed(&g, &init, &opts);
            let (got, got_report) = faulted.solve_detailed(&g, &init, &opts);
            assert_eq!(got, want, "inert fault profile changed the solve");
            assert_eq!(got_report.faults, FaultReport::default());
            assert_eq!(got_report.total_cycles, want_report.total_cycles);
            assert_eq!(got_report.load_cycles, want_report.load_cycles);
            assert!(
                (got_report.energy.total().get() - want_report.energy.total().get()).abs() < 1e-9
            );
        }

        #[test]
        fn nonzero_ber_is_deterministic() {
            let (g, init, opts) = king_setup(43);
            // ~1e-3 BER: enough activity to exercise every counter.
            let run = || {
                let mut m = SachiMachine::new(
                    SachiConfig::new(DesignKind::N2)
                        .with_fault(profile(1_000_000, RecoveryPolicy::default())),
                );
                m.solve_detailed(&g, &init, &opts)
            };
            let (a, ra) = run();
            let (b, rb) = run();
            assert_eq!(a, b);
            assert_eq!(ra.faults, rb.faults);
            assert!(ra.faults.injected_flips > 0, "BER 1e-3 never fired");
            assert_eq!(ra.total_cycles, rb.total_cycles);
        }

        #[test]
        fn failfast_aborts_on_first_detection() {
            let (g, init, opts) = king_setup(47);
            // Massive BER: a detection happens almost immediately.
            let mut m = SachiMachine::new(
                SachiConfig::new(DesignKind::N3)
                    .with_fault(profile(100_000_000, RecoveryPolicy::FailFast)),
            );
            let (result, report) = m.solve_detailed(&g, &init, &opts);
            assert!(result.degraded);
            assert!(!result.converged);
            assert!(report.faults.degraded);
            assert_eq!(report.faults.detected, 1, "fail-fast stops at the first");
            assert_eq!(report.faults.retries, 0);
            assert_eq!(result.sweeps, 0, "aborted inside the first sweep");
        }

        #[test]
        fn retry_policy_books_refetches_on_the_critical_path() {
            let (g, init, opts) = king_setup(53);
            let mut m = SachiMachine::new(SachiConfig::new(DesignKind::N3).with_fault(profile(
                10_000_000, // ~1e-2: detections every few tuples
                RecoveryPolicy::RefetchRetry { max_retries: 5 },
            )));
            let (result, report) = m.solve_detailed(&g, &init, &opts);
            assert!(report.faults.detected > 0);
            assert!(report.faults.retries > 0);
            assert!(report.faults.refetch_cycles > Cycles::ZERO);
            // Refetches serialize: the run is strictly slower than clean.
            let mut clean = SachiMachine::new(SachiConfig::new(DesignKind::N3));
            let (_, clean_report) = clean.solve_detailed(&g, &init, &opts);
            if result.sweeps == clean_report.sweeps {
                assert!(report.load_cycles > clean_report.load_cycles);
            }
            // The run completes either way; degradation only ever comes
            // from an exhausted budget, never a crash.
            assert!(result.sweeps > 0);
        }

        #[test]
        fn zero_retry_budget_degrades_but_completes() {
            let (g, init, opts) = king_setup(59);
            let mut m = SachiMachine::new(SachiConfig::new(DesignKind::N1b).with_fault(profile(
                50_000_000,
                RecoveryPolicy::RefetchRetry { max_retries: 0 },
            )));
            let (result, report) = m.solve_detailed(&g, &init, &opts);
            assert!(report.faults.detected > 0);
            assert_eq!(report.faults.retries, 0);
            assert!(report.faults.degraded);
            assert!(result.degraded);
            assert!(result.sweeps > 0, "degraded replicas still finish");
        }
    }

    #[test]
    #[should_panic(expected = "resolution override")]
    fn too_small_resolution_override_rejected() {
        let g = topology::king(3, 3, |_, _| 100).unwrap();
        let init = SpinVector::filled(9, sachi_ising::spin::Spin::Up);
        let mut machine = SachiMachine::new(SachiConfig::default().with_resolution(4));
        let _ = machine.solve_detailed(&g, &init, &SolveOptions::for_graph(&g, 0));
    }

    #[test]
    fn resolution_override_widens_encoding() {
        let (g, init, opts) = king_setup(29);
        let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N2).with_resolution(16));
        let (_, report) = machine.solve_detailed(&g, &init, &opts);
        assert_eq!(report.resolution_bits, 16);
        // Same trajectory as the reference regardless of width.
        let mut reference = CpuReferenceSolver::new();
        let golden = reference.solve(&g, &init, &opts);
        let (result, _) = machine.solve_detailed(&g, &init, &opts);
        assert_eq!(result.energy, golden.energy);
    }
}
