//! SACHI machine configuration (Sec. V.1 plus the Sec. VII.2 presets).

use sachi_ising::recovery::RecoveryPolicy;
use sachi_mem::cache::CacheHierarchy;
use sachi_mem::fault::FaultModel;
use sachi_mem::params::TechnologyParams;
use std::fmt;

/// The four stationarity designs of Sec. IV.D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DesignKind {
    /// SACHI(n1a): spin stationary, bit-serial ICs, bit-major order.
    N1a,
    /// SACHI(n1b): spin stationary, bit-serial ICs, IC-major order.
    N1b,
    /// SACHI(n2): IC stationary, one neighbor per cycle, reuse R.
    N2,
    /// SACHI(n3): mixed stationary, reuse-aware compute, reuse N*R.
    N3,
}

impl DesignKind {
    /// All designs in ascending-reuse order.
    pub const ALL: [DesignKind; 4] = [
        DesignKind::N1a,
        DesignKind::N1b,
        DesignKind::N2,
        DesignKind::N3,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::N1a => "SACHI(n1a)",
            DesignKind::N1b => "SACHI(n1b)",
            DesignKind::N2 => "SACHI(n2)",
            DesignKind::N3 => "SACHI(n3)",
        }
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fault model plus the recovery policy applied when parity detects
/// one of its faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultProfile {
    /// What faults are injected and from which seed.
    pub model: FaultModel,
    /// What the machine does when a fault is detected.
    pub policy: RecoveryPolicy,
}

impl FaultProfile {
    /// Profile with the given model and the default retry policy.
    pub fn new(model: FaultModel) -> Self {
        FaultProfile {
            model,
            policy: RecoveryPolicy::default(),
        }
    }

    /// Replaces the recovery policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Full machine configuration.
///
/// ```
/// use sachi_core::config::{DesignKind, SachiConfig};
///
/// let config = SachiConfig::new(DesignKind::N3)
///     .with_resolution(8)
///     .without_prefetch();
/// assert_eq!(config.design, DesignKind::N3);
/// assert_eq!(config.resolution, Some(8));
/// assert!(!config.prefetch);
/// ```
#[derive(Debug, Clone)]
pub struct SachiConfig {
    /// Which stationarity design to run.
    pub design: DesignKind,
    /// Compute/storage array geometry.
    pub hierarchy: CacheHierarchy,
    /// Technology constants.
    pub tech: TechnologyParams,
    /// IC resolution override; `None` derives the minimum resolution from
    /// the graph's coefficients.
    pub resolution: Option<u32>,
    /// DRAM prefetcher enabled (Sec. IV.A). Disable for `abl_prefetch`.
    pub prefetch: bool,
    /// Storage-array write-port banks (sram22-style banking): a `B`-bank
    /// array accepts `B` row uploads per cycle, dividing the per-round
    /// upload term of the sweep schedule by `B`. `1` (the default) is
    /// exactly the unbanked machine — cycle-identical by construction.
    pub bank_count: usize,
    /// Tuple-rep enabled (Sec. IV.B.1). Disable for `abl_tuple_rep`.
    pub tuple_rep: bool,
    /// Optional fault-injection profile. `None` (the default) is a
    /// perfect memory hierarchy; honored by [`crate::machine::SachiMachine`]
    /// (the fully bit-accurate pipeline). The resident-optimized
    /// [`crate::tiled::ResidentN3Machine`] models a fault-free hierarchy.
    pub fault: Option<FaultProfile>,
    /// Record hierarchical solve-phase spans (cycle-domain timestamps)
    /// into the run report. Off by default: a disabled trace allocates
    /// nothing and records nothing.
    pub trace_phases: bool,
}

impl SachiConfig {
    /// The paper's default configuration for a given design: 16x10KB
    /// compute tiles, 160KB storage array, FreePDK-45 constants, prefetch
    /// and tuple-rep on.
    pub fn new(design: DesignKind) -> Self {
        SachiConfig {
            design,
            hierarchy: CacheHierarchy::hpca_default(),
            tech: TechnologyParams::freepdk45(),
            resolution: None,
            prefetch: true,
            bank_count: 1,
            tuple_rep: true,
            fault: None,
            trace_phases: false,
        }
    }

    /// Replaces the cache hierarchy (Sec. VII.2 presets).
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: CacheHierarchy) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Replaces the technology parameters.
    #[must_use]
    pub fn with_tech(mut self, tech: TechnologyParams) -> Self {
        self.tech = tech;
        self
    }

    /// Forces a specific IC resolution (2..=32).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=32`.
    #[must_use]
    pub fn with_resolution(mut self, bits: u32) -> Self {
        assert!(
            (2..=32).contains(&bits),
            "resolution must be 2..=32, got {bits}"
        );
        self.resolution = Some(bits);
        self
    }

    /// Disables the DRAM prefetcher.
    #[must_use]
    pub fn without_prefetch(mut self) -> Self {
        self.prefetch = false;
        self
    }

    /// Sets the storage-array bank count (upload parallelism).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn with_banks(mut self, banks: usize) -> Self {
        assert!(banks >= 1, "bank count must be >= 1, got {banks}");
        self.bank_count = banks;
        self
    }

    /// Disables tuple-rep.
    #[must_use]
    pub fn without_tuple_rep(mut self) -> Self {
        self.tuple_rep = false;
        self
    }

    /// Enables fault injection with the given profile.
    #[must_use]
    pub fn with_fault(mut self, profile: FaultProfile) -> Self {
        self.fault = Some(profile);
        self
    }

    /// Removes any fault profile (back to the perfect hierarchy).
    #[must_use]
    pub fn without_faults(mut self) -> Self {
        self.fault = None;
        self
    }

    /// Enables solve-phase span tracing (`--trace-phases` on the CLI).
    #[must_use]
    pub fn with_phase_trace(mut self) -> Self {
        self.trace_phases = true;
        self
    }
}

impl Default for SachiConfig {
    /// SACHI(n3) in the paper's default configuration.
    fn default() -> Self {
        SachiConfig::new(DesignKind::N3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_n3_with_paper_geometry() {
        let c = SachiConfig::default();
        assert_eq!(c.design, DesignKind::N3);
        assert_eq!(c.hierarchy, CacheHierarchy::hpca_default());
        assert!(c.prefetch);
        assert_eq!(c.bank_count, 1);
        assert!(c.tuple_rep);
        assert_eq!(c.resolution, None);
        assert_eq!(c.fault, None);
        assert!(!c.trace_phases);
        assert!(SachiConfig::default().with_phase_trace().trace_phases);
    }

    #[test]
    fn fault_profile_builders_compose() {
        use sachi_mem::fault::FaultRate;
        let model = FaultModel::new(5).with_read_ber(FaultRate::from_ppb(1000));
        let profile = FaultProfile::new(model.clone()).with_policy(RecoveryPolicy::FailFast);
        assert_eq!(profile.policy, RecoveryPolicy::FailFast);
        let c = SachiConfig::default().with_fault(profile.clone());
        assert_eq!(c.fault, Some(profile));
        assert_eq!(c.without_faults().fault, None);
        // Default profile: inert model, retry policy.
        let d = FaultProfile::default();
        assert!(d.model.is_inert());
        assert_eq!(d.policy, RecoveryPolicy::default());
    }

    #[test]
    fn builder_methods_compose() {
        let c = SachiConfig::new(DesignKind::N1a)
            .with_hierarchy(CacheHierarchy::server())
            .with_resolution(16)
            .without_prefetch()
            .without_tuple_rep()
            .with_banks(4);
        assert_eq!(c.design, DesignKind::N1a);
        assert_eq!(c.hierarchy, CacheHierarchy::server());
        assert_eq!(c.resolution, Some(16));
        assert!(!c.prefetch);
        assert!(!c.tuple_rep);
        assert_eq!(c.bank_count, 4);
    }

    #[test]
    #[should_panic(expected = "bank count must be")]
    fn bank_validation() {
        let _ = SachiConfig::default().with_banks(0);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(DesignKind::N1a.label(), "SACHI(n1a)");
        assert_eq!(format!("{}", DesignKind::N3), "SACHI(n3)");
        assert_eq!(DesignKind::ALL.len(), 4);
        assert!(DesignKind::N1a < DesignKind::N3);
    }

    #[test]
    #[should_panic(expected = "resolution must be")]
    fn resolution_validation() {
        let _ = SachiConfig::default().with_resolution(1);
    }
}
