//! Five-phase pipeline timing (Fig. 11f).
//!
//! A SACHI `H_σ` compute flows through: (1) in-memory XNOR, (2) XNOR
//! queue, (3) shift-and-add + decision, (4) full-adder accumulation
//! initialized with the external field, (5) negation + simulated
//! annealing. Phases 1–4 overlap across tuples; what differs per design is
//! when phase 3 can *first* activate — the "idle time" — and how big the
//! phase-2 queue must be.

use crate::config::DesignKind;
use crate::designs::stationarity;

/// Closed-form schedule of one tuple's compute under a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSchedule {
    /// Which design this schedule describes.
    pub design: DesignKind,
    /// Phase-1 in-memory compute cycles.
    pub phase1_cycles: u64,
    /// Cycles phases 3–5 sit idle before their first activation.
    pub idle_cycles: u64,
    /// Minimum XNOR-queue capacity in bits.
    pub queue_bits: u64,
    /// SRAM read throughput in XNOR bits per cycle.
    pub throughput_bits_per_cycle: u64,
    /// Total latency from first RWL pulse to the annealer decision.
    pub total_latency_cycles: u64,
}

impl PhaseSchedule {
    /// Builds the schedule for a tuple of `n` neighbors at resolution `r`
    /// with `row_bits`-wide compute rows.
    pub fn new(design: DesignKind, n: u64, r: u32, row_bits: u64) -> Self {
        let d = stationarity(design);
        let phase1 = d.phase1_cycles(n, r, row_bits);
        let idle = d.idle_cycles(n, r);
        let queue = d.xnor_queue_bits(n, r);
        let throughput = match design {
            DesignKind::N1a | DesignKind::N1b => 1,
            DesignKind::N2 => r as u64,
            DesignKind::N3 => (n * (r as u64 + 1)).div_ceil(phase1.max(1)),
        };
        // Tail: decision (1) + accumulate (1) + negate/anneal (1).
        let total = phase1 + 3;
        PhaseSchedule {
            design,
            phase1_cycles: phase1,
            idle_cycles: idle,
            queue_bits: queue,
            throughput_bits_per_cycle: throughput,
            total_latency_cycles: total,
        }
    }

    /// Cycles to stream `tuples` tuples through one tile, with phases
    /// overlapped: one pipeline fill plus steady-state phase-1 throughput.
    pub fn round_cycles(&self, tuples: u64) -> u64 {
        if tuples == 0 {
            return 0;
        }
        self.idle_cycles + tuples * self.phase1_cycles.max(1) + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11f_idle_times() {
        // 4x3-image example of Fig. 11: N = 2 neighbors shown per tuple
        // at R = 3 (take N = 2, R = 3).
        let n1a = PhaseSchedule::new(DesignKind::N1a, 2, 3, 800);
        let n1b = PhaseSchedule::new(DesignKind::N1b, 2, 3, 800);
        // n1a waits (R-1)*N + 1 cycles; n1b only R.
        assert_eq!(n1a.idle_cycles, 5);
        assert_eq!(n1b.idle_cycles, 3);
        assert!(n1b.idle_cycles < n1a.idle_cycles);
        // Queue: N*(R+1) = 8 bits vs a single R+1 = 4-bit entry.
        assert_eq!(n1a.queue_bits, 8);
        assert_eq!(n1b.queue_bits, 4);
    }

    #[test]
    fn throughput_ladder() {
        let (n, r) = (8u64, 4u32);
        let t = |k| PhaseSchedule::new(k, n, r, 800).throughput_bits_per_cycle;
        assert_eq!(t(DesignKind::N1a), 1);
        assert_eq!(t(DesignKind::N1b), 1);
        assert_eq!(t(DesignKind::N2), 4);
        // n3 reads the whole tuple in one cycle: N*(R+1) = 40 bits/cycle.
        assert_eq!(t(DesignKind::N3), 40);
    }

    #[test]
    fn round_cycles_scale_with_tuples() {
        let s = PhaseSchedule::new(DesignKind::N2, 8, 4, 800);
        assert_eq!(s.round_cycles(0), 0);
        let ten = s.round_cycles(10);
        let twenty = s.round_cycles(20);
        // Steady-state slope is phase1 per tuple.
        assert_eq!(twenty - ten, 10 * s.phase1_cycles);
        // Fill cost appears once.
        assert_eq!(ten, s.idle_cycles + 10 * s.phase1_cycles + 3);
    }

    #[test]
    fn n3_latency_independent_of_n_and_r_when_row_fits() {
        // O(1) compute (Sec. IV.D.4): latency is flat while the tuple fits
        // in one row.
        let a = PhaseSchedule::new(DesignKind::N3, 8, 4, 800);
        let b = PhaseSchedule::new(DesignKind::N3, 100, 7, 800);
        assert_eq!(a.phase1_cycles, 1);
        assert_eq!(b.phase1_cycles, 1);
        assert_eq!(a.total_latency_cycles, b.total_latency_cycles);
        // ... and grows only via row splits beyond that.
        let c = PhaseSchedule::new(DesignKind::N3, 999, 4, 800);
        assert_eq!(c.phase1_cycles, 7);
    }

    #[test]
    fn per_tuple_latency_ordering_matches_paper() {
        let (n, r) = (48u64, 6u32);
        let lat = |k| PhaseSchedule::new(k, n, r, 800).total_latency_cycles;
        assert!(lat(DesignKind::N3) < lat(DesignKind::N2));
        assert!(lat(DesignKind::N2) < lat(DesignKind::N1b));
        assert!(lat(DesignKind::N1b) <= lat(DesignKind::N1a));
    }
}
