//! Asset allocation (Sec. V.2a): split an $80M portfolio across two
//! parties with minimal imbalance, on SACHI vs the Karmarkar-Karp
//! reference partitioner.
//!
//! ```sh
//! cargo run --release --example asset_allocation -- [num_assets]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let workload = AssetAllocation::new(m, 11);
    println!(
        "partitioning ${}M across {m} assets (values quantized to {}-bit ICs)",
        80,
        workload.shape().resolution_bits
    );

    // SACHI(n3) solve.
    let graph = workload.graph();
    let mut rng = StdRng::seed_from_u64(3);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (result, report) = machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, 5));
    let sachi_imbalance = workload.imbalance(&result.spins).abs();
    println!(
        "SACHI(n3)      : imbalance ${:>10}  accuracy {:>6.3}%  ({} iterations, {}, {})",
        sachi_imbalance,
        workload.accuracy(&result.spins) * 100.0,
        report.sweeps,
        report.total_cycles,
        report.energy.total()
    );

    // Karmarkar-Karp reference (the OPTSolv of Fig. 16 for this COP).
    let (kk_assignment, _) = karmarkar_karp(workload.values());
    let kk_imbalance = workload.imbalance(&kk_assignment).abs();
    println!(
        "Karmarkar-Karp : imbalance ${:>10}  accuracy {:>6.3}%",
        kk_imbalance,
        workload.accuracy(&kk_assignment) * 100.0
    );

    // Genetic algorithm for the Fig. 1-style contrast.
    let ga = run_ga_on_graph(graph, &GaOptions::standard(9));
    let ga_imbalance = workload.imbalance(&ga.best_spins()).abs();
    println!(
        "GA             : imbalance ${:>10}  accuracy {:>6.3}%  ({} evaluations)",
        ga_imbalance,
        workload.accuracy(&ga.best_spins()) * 100.0,
        ga.evaluations
    );

    let split: Vec<char> = result
        .spins
        .iter()
        .map(|s| if s.bit() { 'A' } else { 'B' })
        .collect();
    println!(
        "\nSACHI assignment: {}",
        split.into_iter().collect::<String>()
    );
}
