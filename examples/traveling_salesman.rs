//! Traveling salesman (Sec. V.2c): the Lucas tour formulation solved as a
//! pure Ising problem on SACHI, decoded into a route and compared against
//! the 2-opt reference (Concorde stand-in), plus the paper's
//! decision-version `H < W` check.
//!
//! ```sh
//! cargo run --release --example traveling_salesman -- [num_cities]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let workload = TspTour::new(n, 17);
    println!(
        "{n} cities, {} spins in the one-hot Lucas encoding",
        workload.graph().num_spins()
    );

    // Best-of-a-few annealed SACHI solves (standard practice for quadratic
    // TSP encodings).
    let graph = workload.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best: Option<(SolveResult, RunReport)> = None;
    for seed in 0..4 {
        let (result, report) =
            machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, seed));
        let better = match &best {
            Some((b, _)) => {
                workload.decoded_length(&result.spins) < workload.decoded_length(&b.spins)
            }
            None => true,
        };
        if better {
            best = Some((result, report));
        }
    }
    let (result, report) = best.expect("at least one solve ran");

    let tour = workload.decode_tour(&result.spins);
    let sachi_len = workload.decoded_length(&result.spins);
    println!(
        "SACHI(n3) tour : {:?}  length {}  ({} iterations, {})",
        tour, sachi_len, report.sweeps, report.total_cycles
    );

    let (ref_tour, ref_len) = tsp_reference(workload.distances());
    println!("2-opt reference: {ref_tour:?}  length {ref_len}");
    println!(
        "tour quality   : {:.1}% of reference",
        workload.accuracy(&result.spins) * 100.0
    );

    // The paper's decision variant: is there an assignment with H < W?
    let decision = TspDecision::new(64, 5);
    let dg = decision.graph();
    let mut drng = StdRng::seed_from_u64(8);
    let dinit = SpinVector::random(dg.num_spins(), &mut drng);
    let (dresult, dreport) = machine.solve_detailed(dg, &dinit, &SolveOptions::for_graph(dg, 3));
    let w = sachi_ising::hamiltonian::energy(dg, &dinit); // threshold: beat the start
    println!(
        "\ndecision TSP (64 cities, complete graph): H = {} vs W = {} -> {} ({} iterations, {})",
        dresult.energy,
        w,
        if decision.hamiltonian_below(&dresult.spins, w) {
            "feasible"
        } else {
            "infeasible"
        },
        dreport.sweeps,
        dreport.total_cycles
    );
}
