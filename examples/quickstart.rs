//! Quickstart: solve one COP on every SACHI stationarity design and
//! compare cycles, energy, and reuse.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn main() {
    // A 10x10 molecular-dynamics lattice: King's graph, 4-bit ferromagnetic
    // bonds, exactly known ground state.
    let workload = MolecularDynamics::new(10, 10, 42);
    let graph = workload.graph();
    let mut rng = StdRng::seed_from_u64(7);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 1);

    // Golden model first: the trajectory every machine must reproduce.
    let mut reference = CpuReferenceSolver::new();
    let golden = reference.solve(graph, &init, &opts);
    println!(
        "golden model : H = {} after {} iterations (accuracy {:.1}%)",
        golden.energy,
        golden.sweeps,
        workload.accuracy(&golden.spins) * 100.0
    );
    println!();
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>8} {:>10}",
        "design", "iters", "cycles", "energy", "reuse", "queue-bits"
    );

    for design in DesignKind::ALL {
        let mut machine = SachiMachine::new(SachiConfig::new(design));
        let (result, report) = machine.solve_detailed(graph, &init, &opts);
        assert_eq!(
            result.energy, golden.energy,
            "machines must match the golden model"
        );
        println!(
            "{:<12} {:>6} {:>14} {:>14} {:>8.1} {:>10}",
            design.label(),
            report.sweeps,
            report.total_cycles.get(),
            format!("{}", report.energy.total()),
            report.reuse,
            report.queue_peak_bits
        );
    }

    println!();
    println!("SACHI(n3)'s reuse-aware mixed-stationary compute needs the fewest");
    println!("cycles and the least energy — the paper's headline mechanism.");
}
