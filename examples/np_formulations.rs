//! The NP-formulation library (after Lucas, the paper's ref. [11]): build
//! max-cut, vertex-cover, and graph-coloring Ising problems, solve them
//! on SACHI, and decode the answers — plus round-tripping a problem
//! through the DIMACS text format.
//!
//! ```sh
//! cargo run --release --example np_formulations
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;
use sachi::workloads::lucas;

fn solve_qubo(problem: &QuboProblem, restarts: u64, label: &str) -> SpinVector {
    let graph = problem.graph();
    let mut rng = StdRng::seed_from_u64(1);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best: Option<(i64, SpinVector, RunReport)> = None;
    for seed in 0..restarts {
        let (result, report) =
            machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, seed));
        let obj = problem.objective(&result.spins);
        if best.as_ref().is_none_or(|(b, _, _)| obj < *b) {
            best = Some((obj, result.spins, report));
        }
    }
    let (obj, spins, report) = best.expect("restarts > 0");
    println!(
        "{label}: objective {obj} in {} iterations x {} restarts ({} per solve)",
        report.sweeps, restarts, report.total_cycles
    );
    spins
}

fn main() {
    let petersen = lucas::InputGraph::petersen();
    println!(
        "instance: the Petersen graph ({} vertices, {} edges, 3-regular)\n",
        petersen.num_vertices(),
        petersen.edges().len()
    );

    // --- max cut ---
    let problem = lucas::max_cut(&petersen).expect("formulation builds");
    let spins = solve_qubo(&problem, 6, "max-cut      ");
    println!(
        "              cut {} of 15 edges (optimum for Petersen: 12)\n",
        lucas::cut_size(&petersen, &spins)
    );

    // --- minimum vertex cover ---
    let problem = lucas::vertex_cover(&petersen).expect("formulation builds");
    let spins = solve_qubo(&problem, 10, "vertex cover ");
    let selected = problem.decode(&spins);
    let size = selected.iter().filter(|&&s| s).count();
    println!(
        "              cover of {size} vertices, valid: {} (optimum: 6)\n",
        lucas::is_vertex_cover(&petersen, &selected)
    );

    // --- graph coloring ---
    for k in [2usize, 3] {
        let problem = lucas::coloring(&petersen, k).expect("formulation builds");
        let spins = solve_qubo(&problem, 15, &format!("{k}-coloring   "));
        match lucas::decode_coloring(&petersen, k, &spins) {
            Some(colors) => println!("              proper {k}-coloring found: {colors:?}\n"),
            None => println!(
                "              no proper {k}-coloring (expected for k=2: chromatic number is 3)\n"
            ),
        }
    }

    // --- text-format round trip ---
    let dimacs = to_dimacs(
        lucas::max_cut(&petersen)
            .expect("formulation builds")
            .graph(),
    );
    let reparsed = parse_dimacs(&dimacs).expect("round-trip parses");
    println!(
        "DIMACS round-trip: {} bytes, {} spins, {} edges — identical: {}",
        dimacs.len(),
        reparsed.num_spins(),
        reparsed.num_edges(),
        reparsed
            == *lucas::max_cut(&petersen)
                .expect("formulation builds")
                .graph()
    );
}
