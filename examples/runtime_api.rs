//! The CUDA-like host API (Sec. VII.3): stage problems, launch them on
//! the repurposed cache, and interleave with conventional memory traffic
//! — demonstrating the mode register and the Sec. VII.1 cost story.
//!
//! ```sh
//! cargo run --release --example runtime_api
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sachi::prelude::*;

fn main() {
    let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
    println!(
        "context up: L1 in {} mode, {} sets x {} ways",
        ctx.l1().mode(),
        ctx.l1().sets(),
        ctx.l1().ways()
    );

    // Phase 1: the host runs conventional work; the L1 is a plain cache.
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..20_000 {
        let addr: u64 = rng.gen_range(0..1 << 18) & !0x7;
        ctx.l1_mut().read(addr).expect("normal mode");
    }
    println!(
        "phase 1 (conventional): {} accesses, {:.1}% hit rate",
        ctx.l1().stats().hits + ctx.l1().stats().misses,
        ctx.l1().stats().hit_rate() * 100.0
    );

    // Phase 2: stage two Ising problems, like cudaMemcpy'ing two kernels'
    // inputs.
    let md = MolecularDynamics::new(20, 20, 7);
    let seg = ImageSegmentation::with_options(16, 16, 9, Connectivity::Grid4, 6);
    let mut rng = StdRng::seed_from_u64(2);
    let md_init = SpinVector::random(md.graph().num_spins(), &mut rng);
    let seg_init = SpinVector::random(seg.graph().num_spins(), &mut rng);
    let md_handle = ctx.upload(md.graph(), &md_init);
    let seg_handle = ctx.upload(seg.graph(), &seg_init);
    println!(
        "phase 2 (upload): staged problems #{} and #{}",
        md_handle.id(),
        seg_handle.id()
    );

    // Phase 3: launches. Each one flips the mode register, flushes the
    // L1, solves, and hands the cache back.
    let md_acc = |s: &SpinVector| md.accuracy(s);
    let seg_acc = |s: &SpinVector| seg.accuracy(s);
    type Launch<'a> = (
        &'a str,
        &'a ProblemHandle,
        &'a IsingGraph,
        &'a dyn Fn(&SpinVector) -> f64,
    );
    let launches: [Launch; 2] = [
        ("molecular dynamics", &md_handle, md.graph(), &md_acc),
        ("image segmentation", &seg_handle, seg.graph(), &seg_acc),
    ];
    for (name, handle, graph, acc) in launches {
        let launch = ctx.launch(handle, &SolveOptions::for_graph(graph, 11));
        println!(
            "launch {name}: H = {} in {} iterations | {} solve cycles, {} mode-switch cycles ({} lines flushed) | accuracy {:.1}%",
            launch.result.energy,
            launch.result.sweeps,
            launch.report.total_cycles.get(),
            launch.mode_switch_cycles.get(),
            launch.lines_flushed_entering,
            acc(&launch.result.spins) * 100.0
        );
    }

    // Phase 4: conventional work resumes on a cold cache — the honest
    // cost of repurposing.
    let mut rng = StdRng::seed_from_u64(1);
    let (mut hits, mut misses) = (0u64, 0u64);
    for _ in 0..20_000 {
        let addr: u64 = rng.gen_range(0..1 << 18) & !0x7;
        match ctx.l1_mut().read(addr).expect("normal mode restored") {
            Access::Hit => hits += 1,
            Access::Miss { .. } => misses += 1,
        }
    }
    println!(
        "phase 4 (conventional, post-launch): {:.1}% hit rate on the refilled cache",
        hits as f64 / (hits + misses) as f64 * 100.0
    );
    println!(
        "totals: {} launches, {} mode switches, {} lines flushed across the session",
        ctx.launches(),
        ctx.l1().stats().mode_switches,
        ctx.l1().stats().lines_flushed
    );
}
