//! Molecular dynamics (Sec. V.2d): King's-graph ferromagnetic ground
//! state on SACHI vs the Ising-CIM baseline at Ising-CIM's 2-bit maximum
//! resolution — the Fig. 15d/e comparison in miniature.
//!
//! ```sh
//! cargo run --release --example molecular_dynamics -- [side]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    // Ising-CIM's envelope: unsigned 2-bit ICs, King's graph.
    let workload = MolecularDynamics::with_resolution(side, side, 33, 2);
    let graph = workload.graph();
    println!(
        "{side}x{side} lattice, {} atoms, ground-state energy {}",
        graph.num_spins(),
        workload.ground_energy()
    );

    let mut rng = StdRng::seed_from_u64(5);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 9);

    let mut sachi = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (s_result, s_report) = sachi.solve_detailed(graph, &init, &opts);

    let mut cim = CimMachine::new();
    let (c_result, c_report) = cim
        .solve_detailed(graph, &init, &opts)
        .expect("within Ising-CIM envelope");

    // Same algorithm, same trajectory — only the hardware differs.
    assert_eq!(s_result.energy, c_result.energy);
    assert_eq!(s_result.sweeps, c_result.sweeps);

    println!(
        "\n{:<12} {:>12} {:>14} {:>8}",
        "machine", "cycles", "energy", "reuse"
    );
    println!(
        "{:<12} {:>12} {:>14} {:>8.1}",
        "SACHI(n3)",
        s_report.total_cycles.get(),
        format!("{}", s_report.energy.total()),
        s_report.reuse
    );
    println!(
        "{:<12} {:>12} {:>14} {:>8.1}",
        "Ising-CIM",
        c_report.total_cycles.get(),
        format!("{}", c_report.energy.total()),
        c_report.reuse
    );
    println!(
        "\nspeedup {:.1}x, energy improvement {:.1}x, reuse advantage {:.0}x",
        c_report.total_cycles.ratio(s_report.total_cycles),
        c_report.energy.total().ratio(s_report.energy.total()),
        s_report.reuse / c_report.reuse
    );
    println!(
        "final accuracy {:.2}% ({} of {} bond weight satisfied)",
        workload.accuracy(&s_result.spins) * 100.0,
        workload.satisfied_bond_weight(&s_result.spins),
        -workload.ground_energy()
    );
}
