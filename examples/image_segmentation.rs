//! Image segmentation (Sec. V.2b, Fig. 2): max-cut split of a synthetic
//! image into foreground and background, rendered as ASCII art, compared
//! against the Edmonds-Karp min-cut reference.
//!
//! ```sh
//! cargo run --release --example image_segmentation -- [width] [height]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let width: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let height: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let workload = ImageSegmentation::with_options(width, height, 21, Connectivity::Grid4, 6);

    println!("input image ({width}x{height}, '@' bright, '.' dark):");
    for r in 0..height {
        let row: String = (0..width)
            .map(|c| {
                let p = workload.pixels()[r * width + c];
                if p > 150 {
                    '@'
                } else if p > 90 {
                    '+'
                } else {
                    '.'
                }
            })
            .collect();
        println!("  {row}");
    }

    // SACHI(n3) max-cut segmentation.
    let graph = workload.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    // Best of a few annealing restarts (simulated annealing is stochastic).
    let mut best: Option<(SolveResult, RunReport)> = None;
    for seed in 0..6 {
        let opts = SolveOptions {
            schedule: Schedule::new(124.0, 0.95, 0.05),
            ..SolveOptions::for_graph(graph, seed)
        };
        let (result, report) = machine.solve_detailed(graph, &init, &opts);
        let better = best
            .as_ref()
            .is_none_or(|(b, _)| workload.accuracy(&result.spins) > workload.accuracy(&b.spins));
        if better {
            best = Some((result, report));
        }
    }
    let (result, report) = best.expect("at least one restart ran");
    println!(
        "\nSACHI(n3) segmentation (boundary cut {}, satisfied weight {}/{}, accuracy {:.1}%, {} iterations, {}):",
        workload.cut_weight(&result.spins),
        workload.satisfied_weight(&result.spins),
        workload.total_weight(),
        workload.accuracy(&result.spins) * 100.0,
        report.sweeps,
        report.total_cycles
    );
    for line in workload.render(&result.spins).lines() {
        println!("  {line}");
    }

    // Ford-Fulkerson-family reference (OPTSolv).
    let (labels, flow) = edmonds_karp_segmentation(&workload);
    println!("\nEdmonds-Karp min-cut reference (max-flow {flow}):");
    for line in workload.render(&labels).lines() {
        println!("  {line}");
    }
}
