//! Conformance suite for the corpus workload families (3-SAT, graph
//! coloring, job scheduling): differential encoder checks (the encoded
//! Ising objective and the decoded domain metrics must match direct
//! evaluation of the instance), overflow behavior through
//! `workloads::encode`, and generator determinism (same seed →
//! byte-identical across threads and repeats; distinct seeds →
//! distinct instances).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Differential: decode(solve(encode(instance))) == direct evaluation
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SAT: the satisfied weight read off the solver state through the
    /// workload equals a direct clause-by-clause recount of the decoded
    /// assignment, and the Ising objective equals the unsatisfied
    /// weight whenever the ancillas sit at their per-clause optimum.
    #[test]
    fn sat_domain_metrics_match_direct_evaluation(
        n in 8usize..16,
        ratio_x10 in 20u64..55,
        seed in 0u64..500,
    ) {
        let m = (n as u64 * ratio_x10 / 10).max(1) as usize;
        let instance = SatInstance::random(n, m, seed);
        let w = SatWorkload::new("prop", instance).expect("small weights encode");
        let graph = w.graph();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(graph, seed).with_max_sweeps(150);
        let result = solver.solve(graph, &init, &opts);

        let assignment = w.decode(&result.spins);
        let direct: i64 = w
            .instance()
            .clauses()
            .iter()
            .filter(|c| c.satisfied_by(&assignment))
            .map(|c| c.weight)
            .sum();
        prop_assert_eq!(w.satisfied_weight(&result.spins), direct);

        // Re-completing the decoded assignment with optimal ancillas
        // makes the QUBO objective exactly the unsatisfied weight.
        let completed = w.complete_assignment(&assignment);
        prop_assert_eq!(
            w.problem().objective(&completed),
            w.instance().unsatisfied_weight(&assignment)
        );
    }

    /// Coloring: conflicts counted through the workload equal a direct
    /// recount over the instance's edge list on the decoded coloring,
    /// for solver states and arbitrary states alike.
    #[test]
    fn coloring_conflicts_match_direct_evaluation(
        n in 5usize..12,
        k in 2usize..5,
        density_bp in 1_000u32..7_000,
        seed in 0u64..500,
    ) {
        let instance = ColoringInstance::gnp(n, k, density_bp, seed);
        let w = ColoringWorkload::new("prop", instance).expect("unit weights encode");
        let graph = w.graph();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc01);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(graph, seed).with_max_sweeps(120);
        let result = solver.solve(graph, &init, &opts);

        for spins in [&init, &result.spins] {
            let colors = w.decode_colors(spins);
            let direct = w
                .instance()
                .edges()
                .iter()
                .filter(|&&(u, v)| colors[u] == colors[v])
                .count();
            prop_assert_eq!(w.conflicts(spins), direct);
            let edges = w.instance().edges().len();
            if edges > 0 {
                let acc = 1.0 - direct as f64 / edges as f64;
                prop_assert!((w.accuracy(spins) - acc).abs() < 1e-12);
            }
        }
    }

    /// Scheduling: the makespan read through the workload equals a
    /// direct per-machine load recount of the decoded assignment.
    #[test]
    fn scheduling_makespan_matches_direct_evaluation(
        jobs in 4usize..10,
        machines in 2usize..5,
        max_p in 3i64..12,
        seed in 0u64..500,
    ) {
        let instance = SchedulingInstance::random(jobs, machines, max_p, seed);
        let w = SchedulingWorkload::new("prop", instance).expect("small durations encode");
        let graph = w.graph();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5c4ed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let opts = SolveOptions::for_graph(graph, seed).with_max_sweeps(120);
        let result = solver.solve(graph, &init, &opts);

        for spins in [&init, &result.spins] {
            let assignment = w.decode_assignment(spins);
            let mut loads = vec![0i64; w.instance().num_machines()];
            for (j, &m) in assignment.iter().enumerate() {
                loads[m] += w.instance().durations()[j];
            }
            let direct = loads.into_iter().max().expect("machines >= 2");
            prop_assert_eq!(w.makespan(spins), direct);
            prop_assert!(w.makespan(spins) >= w.instance().lower_bound());
        }
    }
}

// ---------------------------------------------------------------------
// Overflow: adversarial weights must error, never clamp
// ---------------------------------------------------------------------

#[test]
fn adversarial_weights_raise_coefficient_overflow() {
    // SAT: a clause weight near i64::MAX overflows the i32 narrowing.
    let sat = SatInstance::random(6, 10, 1).with_uniform_weight(i64::MAX / 4);
    assert!(matches!(
        SatWorkload::new("overflow", sat),
        Err(EncodeError::CoefficientOverflow { .. })
    ));

    // Coloring: a one-hot weight out of i32 range overflows.
    let col = ColoringInstance::gnp(6, 3, 5_000, 2);
    assert!(matches!(
        ColoringWorkload::with_weights("overflow", col, i64::from(i32::MAX) * 8, 1),
        Err(EncodeError::CoefficientOverflow { .. })
    ));

    // Scheduling: duration products beyond i32 overflow (durations are
    // fine individually; p_i * p_j is not).
    let sched = SchedulingInstance::new(vec![1 << 18, 1 << 18, 7], 2);
    assert!(matches!(
        SchedulingWorkload::new("overflow", sched),
        Err(EncodeError::CoefficientOverflow { .. })
    ));

    // The same families at sane weights encode fine (the gate is the
    // magnitude, not the family).
    assert!(SatWorkload::new("ok", SatInstance::random(6, 10, 1)).is_ok());
    assert!(ColoringWorkload::new("ok", ColoringInstance::gnp(6, 3, 5_000, 2)).is_ok());
    assert!(SchedulingWorkload::new("ok", SchedulingInstance::random(6, 2, 9, 3)).is_ok());
}

// ---------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------

/// Same seed → byte-identical instances, regardless of which thread
/// generates them and how often.
#[test]
fn same_seed_is_identical_across_threads_and_repeats() {
    let seeds = [0u64, 1, 42, u64::MAX];
    for &seed in &seeds {
        let sat_ref = SatInstance::random(15, 60, seed);
        let col_ref = ColoringInstance::gnp(12, 3, 3_500, seed);
        let sched_ref = SchedulingInstance::random(10, 3, 9, seed);
        // Repeat runs on this thread.
        assert_eq!(sat_ref, SatInstance::random(15, 60, seed));
        assert_eq!(col_ref, ColoringInstance::gnp(12, 3, 3_500, seed));
        assert_eq!(sched_ref, SchedulingInstance::random(10, 3, 9, seed));
        // Fresh threads, several at once.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    (
                        SatInstance::random(15, 60, seed),
                        ColoringInstance::gnp(12, 3, 3_500, seed),
                        SchedulingInstance::random(10, 3, 9, seed),
                    )
                })
            })
            .collect();
        for h in handles {
            let (sat, col, sched) = h.join().expect("generator thread");
            assert_eq!(sat, sat_ref);
            assert_eq!(col, col_ref);
            assert_eq!(sched, sched_ref);
        }
    }
}

/// The planted generators are deterministic too, including the hidden
/// solution, and the plant actually satisfies/colors the instance.
#[test]
fn planted_generators_are_deterministic_and_valid() {
    for seed in [3u64, 99, 12345] {
        let (sat_a, hidden_a) = SatInstance::planted(14, 56, seed);
        let (sat_b, hidden_b) = SatInstance::planted(14, 56, seed);
        assert_eq!(sat_a, sat_b);
        assert_eq!(hidden_a, hidden_b);
        assert_eq!(sat_a.satisfied_weight(&hidden_a), sat_a.total_weight());

        let (col_a, classes_a) = ColoringInstance::planted(12, 3, 4_000, seed);
        let (col_b, classes_b) = ColoringInstance::planted(12, 3, 4_000, seed);
        assert_eq!(col_a, col_b);
        assert_eq!(classes_a, classes_b);
        assert_eq!(col_a.conflicts(&classes_a), 0);
    }
}

/// Injectivity smoke (mirrors the 2^16 replica-seed test at corpus
/// scale): 2^12 distinct seeds produce 2^12 distinct instances in every
/// family.
#[test]
fn distinct_seeds_give_distinct_instances() {
    const SEEDS: u64 = 1 << 12;
    let mut sat_keys = BTreeSet::new();
    let mut col_keys = BTreeSet::new();
    let mut sched_keys = BTreeSet::new();
    for seed in 0..SEEDS {
        // Compact structural fingerprints; a collision would mean two
        // seeds generated identical instances.
        let sat = SatInstance::random(12, 40, seed);
        sat_keys.insert(format!("{:?}", sat.clauses()));
        let col = ColoringInstance::gnp(12, 3, 4_000, seed);
        col_keys.insert(format!("{:?}", col.edges()));
        let sched = SchedulingInstance::random(12, 3, 1 << 30, seed);
        sched_keys.insert(format!("{:?}", sched.durations()));
    }
    assert_eq!(sat_keys.len() as u64, SEEDS, "SAT seed collision");
    assert_eq!(col_keys.len() as u64, SEEDS, "coloring seed collision");
    assert_eq!(sched_keys.len() as u64, SEEDS, "scheduling seed collision");
}

/// The committed corpus itself regenerates identically (cell ids,
/// graphs, shapes) — the baseline in `BENCH_quality.json` is only
/// meaningful if the instances behind it never drift.
#[test]
fn corpus_cells_regenerate_identically_across_threads() {
    let reference: Vec<_> = corpus().iter().map(|c| (c.id, c.graph().clone())).collect();
    let handles: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                corpus()
                    .iter()
                    .map(|c| (c.id, c.graph().clone()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for h in handles {
        let got = h.join().expect("corpus thread");
        assert_eq!(got.len(), reference.len());
        for ((id_a, g_a), (id_b, g_b)) in reference.iter().zip(&got) {
            assert_eq!(id_a, id_b);
            assert_eq!(g_a, g_b, "corpus cell {id_a} drifted");
        }
    }
}
