//! The ensemble determinism contract, property-tested: thread count and
//! replica scheduling are unobservable in ensemble results, and the
//! per-replica seed derivation never collides across replica indices.
//!
//! `ci.sh` runs this suite twice — with `--test-threads=1` and
//! `--test-threads=8` — so the contract is exercised both with the
//! worker pool to itself and under heavy host contention.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sachi::prelude::*;

/// A small frustrated instance whose anneal actually exercises uphill
/// moves (so accept/reject bookkeeping is live, not trivially zero).
fn frustrated_graph(rows: usize, cols: usize, salt: u64) -> IsingGraph {
    let mut k = salt;
    topology::king(rows, cols, |i, j| {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((k >> 33) % 11) as i32 - 5 + (i as i32 - j as i32) % 2
    })
    .expect("king graph construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same master seed => byte-identical `BestOf` (spins, energies,
    /// accept/reject counts, best index) at every thread count.
    #[test]
    fn thread_count_is_unobservable(salt in 0u64..1000, master in 0u64..1000, replicas in 2usize..7) {
        let graph = frustrated_graph(4, 5, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0xA5A5);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(120).with_trace();
        let reference = EnsembleRunner::new(replicas)
            .with_threads(1)
            .run_reference(&graph, &init, &opts);
        for threads in [2usize, 8] {
            let got = EnsembleRunner::new(replicas)
                .with_threads(threads)
                .run_reference(&graph, &init, &opts);
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
    }

    /// Replica results depend only on `(master_seed, replica_index)`:
    /// solving the replicas by hand in *reverse* order with the derived
    /// seeds reproduces the runner's replica vector slot for slot.
    #[test]
    fn replica_order_is_unobservable(salt in 0u64..1000, master in 0u64..1000) {
        let graph = frustrated_graph(4, 4, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x5A5A);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(100);
        let replicas = 5usize;
        let ensemble = EnsembleRunner::new(replicas)
            .with_threads(4)
            .run_reference(&graph, &init, &opts);

        let mut solver = CpuReferenceSolver::new();
        for k in (0..replicas).rev() {
            let o = SolveOptions {
                seed: derive_replica_seed(master_seed_of(&opts), k as u64),
                ..opts.clone()
            };
            let manual = solver.solve(&graph, &init, &o);
            prop_assert_eq!(&manual, &ensemble.replicas[k], "replica {}", k);
        }
    }

    /// The SplitMix64 seed fold is injective in the replica index for a
    /// fixed master seed — no two replicas ever share an annealer
    /// stream. Checked exhaustively over `replica_index < 2^16` per
    /// sampled master seed.
    #[test]
    fn seed_derivation_is_injective_below_2_pow_16(master in any::<u64>()) {
        let mut seeds: Vec<u64> = (0u64..1 << 16)
            .map(|k| derive_replica_seed(master, k))
            .collect();
        seeds.sort_unstable();
        let before = seeds.len();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), before);
    }

    /// Different master seeds derive different streams (first replica).
    #[test]
    fn masters_decouple(a in any::<u64>(), delta in 1u64..100_000) {
        let b = a.wrapping_add(delta);
        prop_assert_ne!(derive_replica_seed(a, 0), derive_replica_seed(b, 0));
    }
}

/// The master seed an ensemble derives from is exactly `options.seed`.
fn master_seed_of(opts: &SolveOptions) -> u64 {
    opts.seed
}

/// Runs a machine ensemble with an optional fault profile, returning the
/// results plus the folded per-replica accounting.
fn machine_ensemble(
    graph: &IsingGraph,
    init: &SpinVector,
    opts: &SolveOptions,
    replicas: usize,
    threads: usize,
    fault: Option<FaultProfile>,
) -> (sachi::ising::ensemble::BestOf, EnsembleReport) {
    let mut config = SachiConfig::new(DesignKind::N3);
    if let Some(profile) = fault {
        config = config.with_fault(profile);
    }
    let ledger = ReplicaLedger::new(replicas);
    let best_of = EnsembleRunner::new(replicas)
        .with_threads(threads)
        .run(graph, init, opts, |k| {
            ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
        });
    (best_of, ledger.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A zero-rate fault model is *provably inert*: the ensemble output
    /// is byte-equal to a run with no fault profile at all, and no fault
    /// accounting ever becomes nonzero. The fault layer extends the PR 2
    /// determinism contract rather than weakening it.
    #[test]
    fn zero_rate_fault_model_is_identity(salt in 0u64..500, master in 0u64..500, fault_seed in any::<u64>()) {
        let graph = frustrated_graph(4, 4, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x0FA1);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(60);
        let replicas = 3usize;

        let (golden, golden_report) =
            machine_ensemble(&graph, &init, &opts, replicas, 2, None);
        let inert = FaultProfile::new(FaultModel::new(fault_seed));
        let (faulted, faulted_report) =
            machine_ensemble(&graph, &init, &opts, replicas, 2, Some(inert));

        prop_assert_eq!(&faulted, &golden);
        for (got, want) in faulted_report.reports.iter().zip(&golden_report.reports) {
            prop_assert_eq!(got, want);
            prop_assert_eq!(got.faults, FaultReport::default());
        }
    }

    /// The fault trajectory is a pure function of `(master seed, fault
    /// seed, replica index)`: at a nonzero BER, 1-thread and 8-thread
    /// ensembles agree byte-for-byte — results *and* per-replica fault
    /// accounting (injections, detections, retries, degraded flags).
    #[test]
    fn fault_streams_are_thread_count_independent(salt in 0u64..500, master in 0u64..500, fault_seed in any::<u64>()) {
        let graph = frustrated_graph(4, 4, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x1FA2);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(60);
        let replicas = 4usize;
        let profile = FaultProfile::new(
            FaultModel::new(fault_seed).with_read_ber(FaultRate::from_probability(1e-3)),
        );

        let (reference, reference_report) =
            machine_ensemble(&graph, &init, &opts, replicas, 1, Some(profile.clone()));
        let (threaded, threaded_report) =
            machine_ensemble(&graph, &init, &opts, replicas, 8, Some(profile));

        prop_assert_eq!(&threaded, &reference);
        prop_assert_eq!(
            threaded_report.reports.len(),
            reference_report.reports.len()
        );
        for (got, want) in threaded_report.reports.iter().zip(&reference_report.reports) {
            prop_assert_eq!(&got.faults, &want.faults);
        }
        prop_assert_eq!(threaded_report.faults_injected, reference_report.faults_injected);
        prop_assert_eq!(threaded_report.faults_detected, reference_report.faults_detected);
        prop_assert_eq!(threaded_report.fault_retries, reference_report.fault_retries);
        prop_assert_eq!(threaded_report.degraded_replicas, reference_report.degraded_replicas);
    }
}

/// Strategy for one daemon job in a mixed-workload batch: family, size,
/// restarts, and seed all vary, so co-tenant jobs on the shared pool are
/// genuinely heterogeneous (different graphs, replica counts, budgets).
fn job_spec_strategy() -> impl Strategy<Value = JobSpec> {
    (0usize..3, 8usize..17, 0u64..1000, 2u64..4).prop_map(|(family, size, seed, restarts)| {
        let cop = match family {
            0 => CopKind::MolecularDynamics,
            1 => CopKind::SatThree,
            _ => CopKind::GraphColoring,
        };
        JobSpec {
            cop,
            size,
            seed,
            restarts,
            step_budget: Some(3000),
            ..JobSpec::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The `sachi serve` multi-tenancy contract: a batch of jobs from
    /// *different* workload families, interleaved on one shared
    /// [`SolverPool`], each produce outcomes byte-identical to their
    /// own [`JobPlan::run_solo`] reference — at every thread count, so
    /// neither co-tenants nor worker scheduling are observable.
    #[test]
    fn mixed_workload_batches_are_tenant_isolated(
        specs in proptest::collection::vec(job_spec_strategy(), 3..6),
        threads in 1usize..5,
    ) {
        let solo: Vec<JobOutcome> = specs
            .iter()
            .map(|s| JobPlan::from_spec(s).expect("spec strategy yields valid jobs").run_solo())
            .collect();
        let pool = SolverPool::with_workers(threads);
        let handles: Vec<JobHandle> = specs
            .iter()
            .map(|s| pool.submit(JobPlan::from_spec(s).expect("validated above")))
            .collect();
        for ((handle, want), spec) in handles.iter().zip(&solo).zip(&specs) {
            let got = handle.wait().expect("pooled job completes");
            prop_assert_eq!(&got.best, &want.best, "spec = {:?}, threads = {}", spec, threads);
            prop_assert_eq!(got.report.serial_cycles, want.report.serial_cycles);
            prop_assert_eq!(got.report.max_replica_cycles, want.report.max_replica_cycles);
            prop_assert!((got.accuracy - want.accuracy).abs() < 1e-12);
        }
        pool.join();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Golden agreement for the tempering upgrade: installing a
    /// tempering config with `exchange = false` must be *byte-identical*
    /// to the plain independent-replica ensemble — the swap machinery
    /// is provably inert until switched on, so every pre-tempering
    /// golden result stays valid.
    #[test]
    fn swaps_disabled_tempering_is_byte_identical_to_plain_ensemble(
        salt in 0u64..500,
        master in 0u64..500,
        replicas in 2usize..6,
        kind_adaptive in any::<bool>(),
    ) {
        let graph = frustrated_graph(4, 4, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x7E41);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let kind = if kind_adaptive { LadderKind::Adaptive } else { LadderKind::Geometric };
        let plain = SolveOptions::for_graph(&graph, master).with_max_sweeps(100);
        let disabled = plain.clone().with_tempering(
            TemperingOptions::for_graph(kind, &graph, replicas).without_exchange(),
        );
        let runner = EnsembleRunner::new(replicas).with_threads(2);
        let want = runner.run_reference(&graph, &init, &plain);
        let got = runner.run_reference(&graph, &init, &disabled);
        prop_assert_eq!(&got, &want);
    }

    /// The tempering determinism contract: with exchange *enabled*, the
    /// swap decisions and segment streams are pure functions of the
    /// master seed, so thread count stays unobservable — and the
    /// borrowed-solver sequential path is the same function as the
    /// thread-pool path.
    #[test]
    fn tempered_ensembles_are_thread_count_independent(
        salt in 0u64..500,
        master in 0u64..500,
        rungs in 2usize..6,
        kind_adaptive in any::<bool>(),
    ) {
        let graph = frustrated_graph(4, 5, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x7E42);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let kind = if kind_adaptive { LadderKind::Adaptive } else { LadderKind::Geometric };
        let mut topts = TemperingOptions::for_graph(kind, &graph, rungs);
        topts.swap_interval = 8;
        let opts = SolveOptions::for_graph(&graph, master)
            .with_max_sweeps(96)
            .with_tempering(topts);
        let reference = EnsembleRunner::new(rungs)
            .with_threads(1)
            .run_reference(&graph, &init, &opts);
        for threads in [2usize, 8] {
            let got = EnsembleRunner::new(rungs)
                .with_threads(threads)
                .run_reference(&graph, &init, &opts);
            prop_assert_eq!(&got, &reference, "threads = {}", threads);
        }
        let mut solver = CpuReferenceSolver::new();
        let sequential = EnsembleRunner::new(rungs)
            .with_threads(4)
            .run_sequential(&mut solver, &graph, &init, &opts);
        prop_assert_eq!(&sequential, &reference);
    }

    /// `BestOf::reduce` is permutation-stable in the *winning key*:
    /// shuffling the replica vector never changes the `(degraded,
    /// energy)` key of the winner — and within any presentation order
    /// the winner is always the **first** replica achieving the minimal
    /// key, so the lowest-index tie-break is observable directly.
    /// (Distinct replicas can tie exactly on the key, so the winning
    /// `SolveResult` itself may legitimately differ across orders; the
    /// key and the first-minimal rule are the contract.)
    #[test]
    fn best_of_reduce_winner_is_permutation_stable(
        salt in 0u64..500,
        master in 0u64..500,
        perm_seed in any::<u64>(),
    ) {
        // Fisher–Yates permutation of the replica slots, driven by a
        // sampled seed so every case reshuffles differently.
        let mut perm_rng = StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..6).collect();
        for i in (1..perm.len()).rev() {
            let j = (perm_rng.next_u64() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let graph = frustrated_graph(4, 4, salt);
        let mut rng = StdRng::seed_from_u64(salt ^ 0x7E43);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(80);
        let original = EnsembleRunner::new(6)
            .with_threads(2)
            .run_reference(&graph, &init, &opts);
        let shuffled: Vec<_> = perm.iter().map(|&k| original.replicas[k].clone()).collect();
        let key = |r: &SolveResult| (r.degraded, r.energy);
        let expected_index = shuffled
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| key(r))
            .map(|(k, _)| k)
            .expect("six replicas");
        let reduced = sachi::ising::ensemble::BestOf::reduce(shuffled);
        prop_assert_eq!(reduced.best_index, expected_index);
        prop_assert_eq!(key(reduced.best()), key(original.best()));
        // Aggregate statistics are order-invariant too.
        prop_assert_eq!(reduced.stats, original.stats);
    }
}

/// On *exact* key ties, `BestOf::reduce` picks the lowest replica
/// index — pinned with duplicated results so the rule is observable.
#[test]
fn best_of_reduce_breaks_ties_to_the_lowest_index() {
    let graph = frustrated_graph(4, 4, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 9).with_max_sweeps(60);
    let base = EnsembleRunner::new(2)
        .with_threads(1)
        .run_reference(&graph, &init, &opts);
    let winner = base.best().clone();
    let mut loser = winner.clone();
    loser.energy = winner.energy + 1; // strictly worse key, same health
                                      // Duplicate the winner at indices 1 and 3: index 1 must win.
    let stacked = vec![loser.clone(), winner.clone(), loser, winner.clone()];
    let reduced = sachi::ising::ensemble::BestOf::reduce(stacked);
    assert_eq!(reduced.best_index, 1);
    assert_eq!(reduced.best(), &winner);
}

/// Sequential (borrowed-solver) ensembles and threaded ensembles are the
/// same function — the bridge that lets `solve_multi_start` share the
/// determinism contract.
#[test]
fn sequential_and_threaded_ensembles_agree() {
    let graph = frustrated_graph(5, 5, 31);
    let mut rng = StdRng::seed_from_u64(32);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 33);
    let runner = EnsembleRunner::new(6).with_threads(4);
    let threaded = runner.run_reference(&graph, &init, &opts);
    let mut solver = CpuReferenceSolver::new();
    let sequential = runner.run_sequential(&mut solver, &graph, &init, &opts);
    assert_eq!(threaded, sequential);

    // And solve_multi_start is exactly "best of that ensemble".
    let mut solver = CpuReferenceSolver::new();
    let multi = solve_multi_start(&mut solver, &graph, &init, &opts, 6);
    assert_eq!(&multi, sequential.best());
}
