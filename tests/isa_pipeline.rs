//! ISA-level integration: a FIST/XNORM program drives a real tuple's
//! `H_σ` computation end-to-end through the micro-executor and matches
//! the mathematical local field.

use sachi::prelude::*;

#[test]
fn xnorm_program_computes_a_tuple_local_field() {
    // Tuple: target spin with neighbors (J, σ): (5, +1), (-3, -1), (7, -1),
    // field h = 2.  H_σ = -(5*1 + (-3)*(-1) + 7*(-1) + 2) = -(5 + 3 - 7 + 2) = -3.
    let neighbors: [(i64, Spin); 3] = [(5, Spin::Up), (-3, Spin::Down), (7, Spin::Down)];
    let h_field = 2i64;
    let r = 4u32;
    let enc = MixedEncoding::new(r).unwrap();

    // DRAM image: the current IC's bits live at 0..4, the neighbor spin
    // bits at 128+k. One bulk FIST(DRAM->storage) copy images the whole
    // region into the storage array, then FIST(storage->compute) stages
    // the IC row and XNORM multiplies it against the spin driven from
    // storage address 128+k.
    let mut exec = MicroExecutor::new(256, 256, SramTile::new(4, 16));
    for (k, (_, s)) in neighbors.iter().enumerate() {
        exec.write_dram(128 + k, &[s.bit()]).unwrap();
    }

    let mut acc = h_field;
    for (k, (j, s)) in neighbors.iter().enumerate() {
        exec.write_dram(0, &enc.encode(*j).unwrap()).unwrap();
        let program = [
            Instruction::Fist {
                subop: FistSubop::DramToStorage,
                addr: 0,
                len: 132,
            },
            Instruction::Fist {
                subop: FistSubop::StorageToCompute,
                addr: 0,
                len: r as u16,
            },
            Instruction::Xnorm {
                dest: (k + 1) as u8,
                src1: (128 + k) as u32,
                src2: 0,
                bit: r as u8,
            },
        ];
        exec.run(&program).unwrap();
        let product = exec.register((k + 1) as u8);
        assert_eq!(product, j * s.value(), "neighbor {k} product");
        acc += product;
    }

    let h_sigma = -acc;
    assert_eq!(h_sigma, -3);
    // Cross-check against the library's local-field definition via a real
    // graph built from the same tuple.
    let graph = GraphBuilder::new(4)
        .edge(0, 1, 5)
        .edge(0, 2, -3)
        .edge(0, 3, 7)
        .field(0, h_field as i32)
        .build()
        .unwrap();
    let spins = SpinVector::from_spins(&[Spin::Up, neighbors[0].1, neighbors[1].1, neighbors[2].1]);
    assert_eq!(h_sigma, local_field(&graph, &spins, 0));
}

#[test]
fn xnorm_hardware_counters_accumulate() {
    let mut exec = MicroExecutor::new(64, 64, SramTile::new(1, 8));
    exec.write_dram(0, &[true, false, true, false]).unwrap();
    exec.write_dram(8, &[true]).unwrap();
    let program = [
        Instruction::Fist {
            subop: FistSubop::DramToStorage,
            addr: 0,
            len: 9,
        },
        Instruction::Fist {
            subop: FistSubop::StorageToCompute,
            addr: 0,
            len: 4,
        },
        Instruction::Xnorm {
            dest: 0,
            src1: 8,
            src2: 0,
            bit: 4,
        },
        Instruction::Xnorm {
            dest: 1,
            src1: 8,
            src2: 0,
            bit: 4,
        },
    ];
    exec.run(&program).unwrap();
    // Two XNORM pulses: two compute accesses, four word-line activations.
    assert_eq!(exec.tile().stats().compute_accesses, 2);
    assert_eq!(exec.tile().stats().rwl_activations, 4);
    assert_eq!(exec.register(0), exec.register(1));
}

#[test]
fn program_bytes_roundtrip_through_decoder() {
    let program = vec![
        Instruction::Fist {
            subop: FistSubop::DramWrite,
            addr: 0,
            len: 64,
        },
        Instruction::Fist {
            subop: FistSubop::DramToStorage,
            addr: 0,
            len: 64,
        },
        Instruction::Fist {
            subop: FistSubop::StorageToCompute,
            addr: 0,
            len: 8,
        },
        Instruction::Xnorm {
            dest: 1,
            src1: 70,
            src2: 0,
            bit: 8,
        },
    ];
    let bytes: Vec<u8> = program.iter().flat_map(|i| i.encode()).collect();
    let decoded = Instruction::decode_program(&bytes).unwrap();
    assert_eq!(decoded, program);
}
