//! The committed sample instances in `data/` must stay loadable and
//! solvable — they are the documented entry point for users with their
//! own graph files.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn data(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/");
    std::fs::read_to_string(format!("{path}{name}")).expect("sample instance exists")
}

#[test]
fn petersen_dimacs_loads_and_reaches_the_optimal_cut() {
    let graph = parse_dimacs(&data("petersen.dimacs")).expect("parses");
    assert_eq!(graph.num_spins(), 10);
    assert_eq!(graph.num_edges(), 15);
    assert_eq!(graph.max_degree(), 3);

    let w = GenericMaxCut::new("petersen", graph);
    let mut rng = StdRng::seed_from_u64(1);
    let init = SpinVector::random(10, &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best_cut = 0;
    for seed in 0..8 {
        let (result, _) =
            machine.solve_detailed(w.graph(), &init, &SolveOptions::for_graph(w.graph(), seed));
        best_cut = best_cut.max(w.cut_weight(&result.spins));
    }
    assert_eq!(best_cut, 12, "Petersen's max cut is 12");
}

#[test]
fn random64_gset_loads_and_solves() {
    let graph = parse_gset(&data("random64.gset")).expect("parses");
    assert_eq!(graph.num_spins(), 64);
    assert_eq!(graph.num_edges(), 256);
    // Gset weights load negated (max-cut form).
    assert!(graph.edges().all(|(_, _, w)| w < 0));

    let w = GenericMaxCut::new("random64", graph);
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(64, &mut rng);
    let mut solver = CpuReferenceSolver::new();
    let r = solve_multi_start(
        &mut solver,
        w.graph(),
        &init,
        &SolveOptions::for_graph(w.graph(), 3),
        6,
    );
    assert!(
        w.accuracy(&r.spins) > 0.95,
        "accuracy {}",
        w.accuracy(&r.spins)
    );
}

#[test]
fn sample_files_round_trip_through_the_writer() {
    let graph = parse_dimacs(&data("petersen.dimacs")).expect("parses");
    let rewritten = to_dimacs(&graph);
    let reparsed = parse_dimacs(&rewritten).expect("round-trips");
    assert_eq!(reparsed, graph);
}

#[test]
fn example12_cnf_loads_and_the_plant_satisfies_everything() {
    let instance = parse_dimacs_cnf(&data("example12.cnf")).expect("parses");
    assert_eq!(instance.num_vars(), 12);
    assert_eq!(instance.clauses().len(), 40);
    // The fixture is planted: all-true satisfies every clause.
    let all_true = vec![true; 12];
    assert_eq!(
        instance.satisfied_weight(&all_true),
        instance.total_weight()
    );

    // Encoded, the completed all-true state sits at zero penalty.
    let w = SatWorkload::new("example12", instance).expect("encodes");
    let planted = w.complete_assignment(&all_true);
    assert_eq!(w.problem().objective(&planted), 0);
    assert!((w.accuracy(&planted) - 1.0).abs() < 1e-12);
}

#[test]
fn example12_cnf_round_trips_through_the_writer() {
    let instance = parse_dimacs_cnf(&data("example12.cnf")).expect("parses");
    let rewritten = instance.to_dimacs_cnf();
    let reparsed = parse_dimacs_cnf(&rewritten).expect("round-trips");
    assert_eq!(reparsed, instance);
}
