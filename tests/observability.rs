//! Golden tests for the observability exporters and the ensemble
//! metrics-folding determinism contract.
//!
//! The JSON snapshot and Prometheus exposition are consumed by machines
//! (CI schema validation, scrapers), so their exact bytes are part of
//! the interface: key order, string escaping, number formatting, and
//! histogram bucket boundaries are all pinned here against full-document
//! golden strings. The final proptest pins the tentpole determinism
//! claim end-to-end: folding per-replica registries through
//! `ReplicaLedger`/`EnsembleReport::metrics` yields byte-identical
//! snapshots at every worker-thread count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::mem::l1cache::{CacheMode, L1Cache};
use sachi::obs::json;
use sachi::prelude::*;

fn sample_registry() -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.counter_add("sram_rbl_discharges", 3);
    reg.counter_add("l1_hits", 10);
    reg.gauge_set("l1_hit_rate", 0.5);
    reg.gauge_set("solver_energy", -24.0);
    reg.observe("round_cycles", 1);
    reg.observe("round_cycles", 4);
    reg.observe("round_cycles", 5);
    reg
}

fn sample_spans() -> Vec<PhaseSpan> {
    vec![
        PhaseSpan {
            phase: SolvePhase::Upload,
            sweep: 0,
            round: 0,
            start: 0,
            end: 128,
            events: 1,
        },
        PhaseSpan {
            phase: SolvePhase::HCompute,
            sweep: 2,
            round: 1,
            start: 128,
            end: 160,
            events: 16,
        },
    ]
}

#[test]
fn json_snapshot_is_golden() {
    // Keys emit in sorted (BTreeMap) order regardless of insertion
    // order; integral gauges keep a trailing `.0`; histogram buckets are
    // non-cumulative with string `le` bounds and a closing `+Inf`.
    let expected = concat!(
        "{\n",
        "  \"schema\": \"sachi.metrics.v1\",\n",
        "  \"counters\": {\n",
        "    \"l1_hits\": 10,\n",
        "    \"sram_rbl_discharges\": 3\n",
        "  },\n",
        "  \"gauges\": {\n",
        "    \"l1_hit_rate\": 0.5,\n",
        "    \"solver_energy\": -24.0\n",
        "  },\n",
        "  \"histograms\": {\n",
        "    \"round_cycles\": {\"count\":3,\"sum\":10,\"buckets\":[",
        "{\"le\":\"1\",\"count\":1},{\"le\":\"4\",\"count\":1},",
        "{\"le\":\"8\",\"count\":1},{\"le\":\"+Inf\",\"count\":0}]}\n",
        "  },\n",
        "  \"spans\": [\n",
        "    {\"phase\":\"upload\",\"sweep\":0,\"round\":0,\"start\":0,\"end\":128,\"events\":1},\n",
        "    {\"phase\":\"h_compute\",\"sweep\":2,\"round\":1,\"start\":128,\"end\":160,\"events\":16}\n",
        "  ]\n",
        "}\n",
    );
    let doc = write_snapshot(&sample_registry(), &sample_spans());
    assert_eq!(doc, expected);
    validate_snapshot(&doc).expect("golden snapshot validates");
}

#[test]
fn empty_registry_snapshot_is_golden() {
    // Empty sections collapse to `{}` and the spans member is omitted
    // entirely, not emitted as `[]`.
    let expected = concat!(
        "{\n",
        "  \"schema\": \"sachi.metrics.v1\",\n",
        "  \"counters\": {},\n",
        "  \"gauges\": {},\n",
        "  \"histograms\": {}\n",
        "}\n",
    );
    let doc = write_snapshot(&MetricsRegistry::new(), &[]);
    assert_eq!(doc, expected);
    validate_snapshot(&doc).expect("empty snapshot validates");
    let root = json::parse(&doc).expect("golden parses");
    assert!(root.get("spans").is_none(), "no spans member when empty");
}

#[test]
fn json_names_escape_and_round_trip() {
    // Hostile metric names must escape per RFC 8259 and survive a parse
    // round-trip unchanged.
    let hostile = "he said \"1\n2\"\t\\done";
    let mut reg = MetricsRegistry::new();
    reg.counter_add(hostile, 7);
    reg.gauge_set("tab\there", 1.25);
    let doc = write_snapshot(&reg, &[]);
    validate_snapshot(&doc).expect("escaped snapshot validates");
    let root = json::parse(&doc).expect("escaped snapshot parses");
    let counters = root.get("counters").expect("counters object");
    assert_eq!(
        counters.get(hostile).and_then(JsonValue::as_num),
        Some(7.0),
        "hostile counter name round-trips through escape + parse"
    );
    let gauges = root.get("gauges").expect("gauges object");
    assert_eq!(
        gauges.get("tab\there").and_then(JsonValue::as_num),
        Some(1.25)
    );
}

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    // Bucket k holds `2^(k-1) < v <= 2^k` (bucket 0 takes 0 and 1), so
    // boundary observations pin exactly which bucket every exporter
    // reports them in.
    let mut reg = MetricsRegistry::new();
    let values: [u64; 7] = [0, 1, 2, 3, 4, (1 << 62) + 1, (1 << 63) + 1];
    for v in values {
        reg.observe("b", v);
    }

    // JSON: non-cumulative counts, string bounds, `+Inf` overflow.
    let doc = write_snapshot(&reg, &[]);
    let root = json::parse(&doc).expect("snapshot parses");
    let buckets: Vec<(String, u64)> = root
        .get("histograms")
        .and_then(|h| h.get("b"))
        .and_then(|b| b.get("buckets"))
        .and_then(JsonValue::as_arr)
        .expect("bucket array")
        .iter()
        .map(|b| {
            (
                b.get("le")
                    .and_then(JsonValue::as_str)
                    .expect("le")
                    .to_string(),
                b.get("count").and_then(JsonValue::as_num).expect("count") as u64,
            )
        })
        .collect();
    let expect: Vec<(String, u64)> = [
        ("1", 2u64),                // 0 and 1
        ("2", 1),                   // 2
        ("4", 2),                   // 3 and 4
        ("9223372036854775808", 1), // 2^62 + 1 lands in (2^62, 2^63]
        ("+Inf", 1),                // 2^63 + 1 overflows every finite bucket
    ]
    .iter()
    .map(|(le, c)| (le.to_string(), *c))
    .collect();
    assert_eq!(buckets, expect);

    // Prometheus: the same boundaries, cumulative.
    let prom = write_exposition(&reg);
    validate_exposition(&prom).expect("exposition parses");
    assert!(prom.contains("sachi_b_bucket{le=\"1\"} 2\n"));
    assert!(prom.contains("sachi_b_bucket{le=\"2\"} 3\n"));
    assert!(prom.contains("sachi_b_bucket{le=\"4\"} 5\n"));
    assert!(prom.contains("sachi_b_bucket{le=\"9223372036854775808\"} 6\n"));
    assert!(prom.contains("sachi_b_bucket{le=\"+Inf\"} 7\n"));
    assert!(prom.contains("sachi_b_count 7\n"));
}

#[test]
fn prom_exposition_is_golden() {
    let expected = concat!(
        "# TYPE sachi_l1_hits counter\n",
        "sachi_l1_hits 10\n",
        "# TYPE sachi_sram_rbl_discharges counter\n",
        "sachi_sram_rbl_discharges 3\n",
        "# TYPE sachi_l1_hit_rate gauge\n",
        "sachi_l1_hit_rate 0.5\n",
        "# TYPE sachi_solver_energy gauge\n",
        "sachi_solver_energy -24\n",
        "# TYPE sachi_round_cycles histogram\n",
        "sachi_round_cycles_bucket{le=\"1\"} 1\n",
        "sachi_round_cycles_bucket{le=\"4\"} 2\n",
        "sachi_round_cycles_bucket{le=\"8\"} 3\n",
        "sachi_round_cycles_bucket{le=\"+Inf\"} 3\n",
        "sachi_round_cycles_sum 10\n",
        "sachi_round_cycles_count 3\n",
    );
    let doc = write_exposition(&sample_registry());
    assert_eq!(doc, expected);
    validate_exposition(&doc).expect("golden exposition parses");
}

/// A small frustrated instance (mixed-sign king graph) so annealing
/// bookkeeping — accepts, uphill moves, skipped writes — is live.
fn frustrated_graph(rows: usize, cols: usize, salt: u64) -> IsingGraph {
    let mut k = salt;
    topology::king(rows, cols, |i, j| {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((k >> 33) % 11) as i32 - 5 + (i as i32 - j as i32) % 2
    })
    .expect("king graph construction")
}

/// Runs a SACHI-machine ensemble the way the CLI does (ledger folding
/// in replica order) and returns the folded registry plus the best
/// replica's phase spans.
fn solve_metrics(
    threads: usize,
    replicas: usize,
    salt: u64,
    master: u64,
) -> (MetricsRegistry, Vec<PhaseSpan>) {
    let graph = frustrated_graph(4, 4, salt);
    let mut rng = StdRng::seed_from_u64(salt ^ 0xC0DE);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, master).with_max_sweeps(60);
    let config = SachiConfig::new(DesignKind::N3).with_phase_trace();
    let ledger = ReplicaLedger::new(replicas);
    let best_of =
        EnsembleRunner::new(replicas)
            .with_threads(threads)
            .run(&graph, &init, &opts, |k| {
                ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
            });
    let ensemble = ledger.finish();
    let mut reg = ensemble.metrics();
    for r in &best_of.replicas {
        r.export_metrics(&mut reg);
    }
    let spans = ensemble.reports[best_of.best_index].phase_spans.clone();
    (reg, spans)
}

#[test]
fn solve_snapshot_covers_every_subsystem() {
    // Assembled exactly as `sachi solve --metrics json` assembles it,
    // the snapshot must pass the strict solve-schema validation: every
    // required counter prefix (sram_, l1_, dram_, machine_, solver_,
    // recovery_) present, structure well-formed, spans recorded.
    let (mut reg, spans) = solve_metrics(2, 3, 11, 7);
    let mut l1 = L1Cache::typical_l1();
    let _ = l1.set_mode(CacheMode::IsingCompute);
    let _ = l1.set_mode(CacheMode::Normal);
    l1.stats().export(&mut reg);
    reg.counter_add("workload_coeff_saturations", 0);

    let doc = write_snapshot(&reg, &spans);
    json::validate_solve_snapshot(&doc).expect("solve snapshot covers every subsystem");
    validate_exposition(&write_exposition(&reg)).expect("prom exposition of same registry");

    assert!(!spans.is_empty(), "phase tracing records spans");
    assert_eq!(
        spans[0].phase,
        SolvePhase::Upload,
        "trace starts with upload"
    );
    assert!(
        spans.iter().any(|s| s.phase.is_round_child()),
        "trace contains round children"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism claim, end to end: per-replica metric
    /// registries folded through `ReplicaLedger` / `EnsembleReport::
    /// metrics` compare equal — and serialize byte-identically — at
    /// every worker-thread count, so `--threads` is unobservable in
    /// `--metrics` output.
    #[test]
    fn metrics_fold_is_thread_count_independent(
        salt in 0u64..200,
        master in 0u64..200,
        replicas in 2usize..5,
    ) {
        let (reference, ref_spans) = solve_metrics(1, replicas, salt, master);
        for threads in [2usize, 8] {
            let (got, spans) = solve_metrics(threads, replicas, salt, master);
            prop_assert_eq!(&got, &reference, "registry at threads = {}", threads);
            prop_assert_eq!(
                write_snapshot(&got, &spans),
                write_snapshot(&reference, &ref_spans),
                "snapshot bytes at threads = {}",
                threads
            );
        }
    }
}
