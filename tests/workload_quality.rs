//! End-to-end solution quality: each COP solved on SACHI reaches a
//! sensible accuracy against its domain reference, and the classical
//! baselines behave as Figs. 1/16 describe (Ising >= GA on quality).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn best_of_restarts(
    machine: &mut SachiMachine,
    graph: &IsingGraph,
    init: &SpinVector,
    restarts: u64,
    score: impl Fn(&SpinVector) -> f64,
) -> SpinVector {
    let mut best: Option<(f64, SpinVector)> = None;
    for seed in 0..restarts {
        // A slower-than-default schedule: these tests assert solution
        // quality, not convergence speed.
        let opts = SolveOptions {
            schedule: Schedule::new((2 * graph.max_abs_coefficient().max(1)) as f64, 0.95, 0.05),
            ..SolveOptions::for_graph(graph, seed)
        };
        let (result, _) = machine.solve_detailed(graph, init, &opts);
        let s = score(&result.spins);
        if best.as_ref().is_none_or(|(b, _)| s > *b) {
            best = Some((s, result.spins));
        }
    }
    best.expect("restarts > 0").1
}

#[test]
fn asset_allocation_balances_within_one_percent() {
    let w = AssetAllocation::new(48, 7);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(1);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 4, |s| w.accuracy(s));
    assert!(w.accuracy(&spins) > 0.99, "accuracy {}", w.accuracy(&spins));
    // Karmarkar-Karp (exact-ish) still wins on raw imbalance.
    let (kk, _) = karmarkar_karp(w.values());
    assert!(w.accuracy(&kk) >= w.accuracy(&spins) - 0.01);
}

#[test]
fn segmentation_reaches_95_percent_objective() {
    let w = ImageSegmentation::with_options(12, 12, 3, Connectivity::Grid4, 6);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 5, |s| w.accuracy(s));
    assert!(w.accuracy(&spins) > 0.95, "accuracy {}", w.accuracy(&spins));
    // It must actually cut boundary weight, not just smooth everything.
    assert!(w.cut_weight(&spins) > 0);
}

#[test]
fn molecular_dynamics_reaches_ground_state_quality() {
    let w = MolecularDynamics::new(8, 8, 5);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(3);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 4, |s| w.accuracy(s));
    assert!(w.accuracy(&spins) > 0.97, "accuracy {}", w.accuracy(&spins));
    // LAMMPS stand-in from the SAME annealed state cannot improve much.
    let (descended, _) = lattice_descent(&w, &spins, 50);
    assert!(w.accuracy(&descended) >= w.accuracy(&spins));
}

#[test]
fn tsp_tour_quality_close_to_two_opt() {
    let w = TspTour::new(7, 9);
    let graph = w.graph();
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best_len = i64::MAX;
    for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        // Same slower-than-default schedule as best_of_restarts: this
        // test asserts tour quality, not convergence speed.
        let opts = SolveOptions {
            schedule: Schedule::new((2 * graph.max_abs_coefficient().max(1)) as f64, 0.95, 0.05),
            ..SolveOptions::for_graph(graph, seed)
        };
        let (result, _) = machine.solve_detailed(graph, &init, &opts);
        best_len = best_len.min(w.decoded_length(&result.spins));
    }
    let ref_len = w.reference_length();
    assert!(
        (best_len as f64) < ref_len as f64 * 1.3,
        "Ising tour {best_len} vs 2-opt {ref_len}"
    );
}

#[test]
fn sat_planted_instance_nearly_fully_satisfied() {
    let (instance, hidden) = SatInstance::planted(20, 86, 7);
    let w = SatWorkload::new("golden", instance).unwrap();
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(6);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 6, |s| w.accuracy(s));
    assert!(w.accuracy(&spins) > 0.95, "accuracy {}", w.accuracy(&spins));
    // The plant proves full satisfiability is attainable.
    assert_eq!(
        w.satisfied_weight(&w.complete_assignment(&hidden)),
        w.instance().total_weight()
    );
}

#[test]
fn coloring_planted_graph_mostly_properly_colored() {
    let (instance, classes) = ColoringInstance::planted(12, 3, 4_000, 11);
    let w = ColoringWorkload::new("golden", instance).unwrap();
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(7);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 8, |s| w.accuracy(s));
    assert!(w.accuracy(&spins) > 0.85, "accuracy {}", w.accuracy(&spins));
    // The plant is a zero-conflict reference point.
    assert_eq!(w.conflicts(&w.encode_colors(&classes)), 0);
}

#[test]
fn scheduling_makespan_close_to_the_lower_bound() {
    let instance = SchedulingInstance::random(12, 3, 9, 13);
    let w = SchedulingWorkload::new("golden", instance).unwrap();
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(8);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let spins = best_of_restarts(&mut machine, graph, &init, 6, |s| w.accuracy(s));
    // accuracy = lower_bound / makespan; 0.9 means within 11% of the
    // provable optimum.
    assert!(w.accuracy(&spins) > 0.9, "accuracy {}", w.accuracy(&spins));
    assert_eq!(w.one_hot_violations(&spins), 0, "every job assigned once");
}

#[test]
fn fig1_ising_beats_ga_on_segmentation_quality() {
    let w = ImageSegmentation::with_options(10, 10, 13, Connectivity::Grid4, 6);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let ising = best_of_restarts(&mut machine, graph, &init, 8, |s| w.accuracy(s));
    let ga = run_ga_on_graph(graph, &GaOptions::standard(5));
    let ising_acc = w.accuracy(&ising);
    let ga_acc = w.accuracy(&ga.best_spins());
    assert!(
        ising_acc >= ga_acc - 0.01,
        "Ising {ising_acc} should match or beat GA {ga_acc}"
    );
    assert!(ising_acc > 0.9);
}

#[test]
fn pso_and_ga_are_competent_but_not_exact() {
    let w = MolecularDynamics::new(6, 6, 15);
    let graph = w.graph();
    let ga = run_ga_on_graph(graph, &GaOptions::standard(6));
    let pso = run_pso_on_graph(graph, &PsoOptions::standard(7));
    for (label, acc) in [
        ("GA", w.accuracy(&ga.best_spins())),
        ("PSO", w.accuracy(&pso.best_spins())),
    ] {
        assert!(acc > 0.7, "{label} accuracy {acc}");
    }
}

#[test]
fn edmonds_karp_and_ising_agree_on_the_disc() {
    // The min-cut reference and a good Ising segmentation should label
    // most pixels identically (up to global flip).
    let w = ImageSegmentation::with_options(12, 12, 19, Connectivity::Grid4, 6);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(5);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let ising = best_of_restarts(&mut machine, graph, &init, 6, |s| w.accuracy(s));
    let (flow_labels, _) = edmonds_karp_segmentation(&w);
    let n = graph.num_spins();
    let distance = ising
        .distance(&flow_labels)
        .min(n - ising.distance(&flow_labels));
    assert!(
        distance < n / 4,
        "Ising and min-cut disagree on {distance}/{n} pixels"
    );
}
