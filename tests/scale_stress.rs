//! Scale stress: the functional machines at tens of thousands of spins —
//! the path that licenses the analytic model at millions. These run in
//! release CI in seconds; the `#[ignore]`d giant run is a manual soak.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

#[test]
fn functional_n3_solves_10k_atoms() {
    // 100x100 King's lattice: 10,000 spins, ~39,600 edges, through the
    // real SRAM datapath with a capped sweep budget.
    let w = MolecularDynamics::new(100, 100, 1);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 3).with_max_sweeps(30);

    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (result, report) = machine.solve_detailed(graph, &init, &opts);
    assert_eq!(result.sweeps, 30);
    let acc = w.accuracy(&result.spins);
    assert!(acc > 0.8, "accuracy after 30 sweeps: {acc}");
    // 10K tuples at ~30 resident bits each overflow nothing: single round.
    assert_eq!(report.rounds_per_sweep, 1);
    assert!(report.reuse > 20.0, "reuse {}", report.reuse);

    // The analytic model must agree with what actually ran (uniform
    // interior degree dominates; the shape uses max degree = 8).
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
    let est = model.iteration(&WorkloadShape::new(10_000, 8, report.resolution_bits));
    let measured_per_sweep = report.compute_cycles.get() / report.sweeps;
    let predicted = est.compute_cycles.get();
    let err = (measured_per_sweep as f64 - predicted as f64).abs() / predicted as f64;
    assert!(
        err < 0.05,
        "model {predicted} vs measured {measured_per_sweep} ({err:.3})"
    );
}

#[test]
fn functional_decision_tsp_at_2k_cities() {
    // 2,000-city complete graph: ~2M edges, tuples spanning multiple
    // rows, multiple compute rounds per sweep.
    let w = TspDecision::with_resolution(2_000, 5, 4);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(7);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 9).with_max_sweeps(3);

    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (result, report) = machine.solve_detailed(graph, &init, &opts);
    assert_eq!(result.sweeps, 3);
    assert!(
        report.rounds_per_sweep > 1,
        "2K-city tuples must overflow the compute array"
    );
    assert!(report.load_cycles > Cycles::ZERO);
    // Reuse per RWL drive: wide tuples split across ~13 rows, so the
    // measured reuse is N*(R+1)/rows ~ 769 (one drive per row), still
    // two orders above the n1 designs' 1.
    assert!(report.reuse > 500.0, "reuse {}", report.reuse);
    // Cut improves over the random start even in 3 sweeps.
    assert!(w.cut(&result.spins) > w.cut(&init));
}

#[test]
fn resident_machine_handles_5k_spins_with_rounds() {
    let w = MolecularDynamics::new(70, 70, 4); // 4,900 spins
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(5);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 6).with_max_sweeps(20);
    // A small array to force real multi-round residency at this size.
    let hierarchy = CacheHierarchy {
        compute: CacheGeometry::new(4, 50, 200, 1),
        storage: CacheGeometry::sachi_storage_default(),
    };
    let golden = CpuReferenceSolver::new().solve(graph, &init, &opts);
    let mut machine =
        ResidentN3Machine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(hierarchy));
    let (result, report) = machine.solve_detailed(graph, &init, &opts);
    assert_eq!(result.energy, golden.energy);
    assert!(report.rounds_per_sweep > 1);
}

/// Fast tier-1 cousin of the soak below: a 4-thread SACHI(n3) replica
/// ensemble at 1,600 spins, checked bit-for-bit against the sequential
/// golden ensemble and sanity-checked for quality and accounting.
#[test]
fn ensemble_smoke_4_threads_at_1600_atoms() {
    let w = MolecularDynamics::new(40, 40, 11);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(12);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 13).with_max_sweeps(15);
    let replicas = 4usize;

    let ledger = ReplicaLedger::new(replicas);
    let config = SachiConfig::new(DesignKind::N3);
    let best_of = EnsembleRunner::new(replicas)
        .with_threads(4)
        .run(graph, &init, &opts, |k| {
            ReportingMachine::new(SachiMachine::new(config.clone()), k, &ledger)
        });

    let mut solver = CpuReferenceSolver::new();
    let reference = EnsembleRunner::new(replicas).run_sequential(&mut solver, graph, &init, &opts);
    assert_eq!(best_of, reference);

    assert_eq!(best_of.stats.replicas as usize, replicas);
    assert!(w.accuracy(&best_of.best().spins) > 0.8);
    let report = ledger.finish();
    assert_eq!(report.reports.len(), replicas);
    assert!(report.serial_cycles >= report.max_replica_cycles);
    assert!(report.ideal_speedup(4) >= 1.0);
}

/// Manual soak: a quarter-million-atom functional solve. Run with
/// `cargo test --release -- --ignored scale_soak`.
#[test]
#[ignore = "multi-minute soak run"]
fn scale_soak_quarter_million_atoms() {
    let w = MolecularDynamics::new(500, 500, 11);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(12);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 13).with_max_sweeps(10);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (result, report) = machine.solve_detailed(graph, &init, &opts);
    assert_eq!(result.sweeps, 10);
    assert!(report.rounds_per_sweep > 1);
    assert!(w.accuracy(&result.spins) > 0.7);
}
