//! Table-driven conformance of the stationarity schedules against the
//! paper's closed forms, across a grid of (N, R) shapes — Figs. 11–13's
//! arithmetic, exhaustively.

use sachi::prelude::*;

const NS: [u64; 6] = [1, 2, 8, 48, 160, 999];
const RS: [u32; 5] = [2, 4, 6, 8, 16];
const ROW_BITS: u64 = 800;

#[test]
fn n1a_closed_forms() {
    let d = stationarity(DesignKind::N1a);
    for n in NS {
        for r in RS {
            assert_eq!(
                d.phase1_cycles(n, r, ROW_BITS),
                n * r as u64,
                "phase1 N={n} R={r}"
            );
            assert_eq!(
                d.idle_cycles(n, r),
                (r as u64 - 1) * n + 1,
                "idle N={n} R={r}"
            );
            assert_eq!(
                d.xnor_queue_bits(n, r),
                n * (r as u64 + 1),
                "queue N={n} R={r}"
            );
            assert_eq!(d.max_reuse(n, r), 1);
            assert_eq!(d.resident_bits_per_tuple(n, r), n);
            assert_eq!(d.driven_bits_per_tuple(n, r, ROW_BITS), n * r as u64);
        }
    }
}

#[test]
fn n1b_closed_forms() {
    let d = stationarity(DesignKind::N1b);
    for n in NS {
        for r in RS {
            assert_eq!(d.phase1_cycles(n, r, ROW_BITS), n * r as u64);
            assert_eq!(d.idle_cycles(n, r), r as u64, "n1b idle is R");
            assert_eq!(
                d.xnor_queue_bits(n, r),
                r as u64 + 1,
                "n1b queue is one entry"
            );
            assert_eq!(d.max_reuse(n, r), 1);
        }
    }
}

#[test]
fn n2_closed_forms() {
    let d = stationarity(DesignKind::N2);
    for n in NS {
        for r in RS {
            assert_eq!(d.phase1_cycles(n, r, ROW_BITS), n, "n2 is O(N)");
            assert_eq!(d.xnor_queue_bits(n, r), 0, "n2 eliminates the queue");
            assert_eq!(d.max_reuse(n, r), r as u64, "n2 reuse is R");
            assert_eq!(d.resident_bits_per_tuple(n, r), n * r as u64);
            assert_eq!(d.driven_bits_per_tuple(n, r, ROW_BITS), n);
        }
    }
}

#[test]
fn n3_closed_forms() {
    let d = stationarity(DesignKind::N3);
    for n in NS {
        for r in RS {
            let groups_per_row = (ROW_BITS / (r as u64 + 1)).max(1);
            let rows = n.max(1).div_ceil(groups_per_row);
            assert_eq!(
                d.phase1_cycles(n, r, ROW_BITS),
                rows,
                "n3 is one cycle per occupied row"
            );
            assert_eq!(d.xnor_queue_bits(n, r), 0);
            assert_eq!(d.max_reuse(n, r), n * r as u64, "n3 reuse is N*R");
            assert_eq!(d.resident_bits_per_tuple(n, r), n * (r as u64 + 1));
            assert_eq!(
                d.driven_bits_per_tuple(n, r, ROW_BITS),
                rows,
                "one drive per row"
            );
        }
    }
}

#[test]
fn ladder_invariants_hold_across_the_grid() {
    for n in NS {
        for r in RS {
            let p1 = |k| stationarity(k).phase1_cycles(n, r, ROW_BITS);
            assert!(p1(DesignKind::N3) <= p1(DesignKind::N2), "N={n} R={r}");
            assert!(p1(DesignKind::N2) <= p1(DesignKind::N1b), "N={n} R={r}");
            assert_eq!(
                p1(DesignKind::N1b),
                p1(DesignKind::N1a),
                "n1 variants share phase-1 cost"
            );

            let reuse = |k| stationarity(k).max_reuse(n, r);
            assert!(reuse(DesignKind::N1a) <= reuse(DesignKind::N2));
            assert!(reuse(DesignKind::N2) <= reuse(DesignKind::N3));

            // Footprint grows with stationarity; driven traffic shrinks.
            let resident = |k| stationarity(k).resident_bits_per_tuple(n, r);
            assert!(resident(DesignKind::N1a) <= resident(DesignKind::N2));
            assert!(resident(DesignKind::N2) <= resident(DesignKind::N3));
            let driven = |k| stationarity(k).driven_bits_per_tuple(n, r, ROW_BITS);
            assert!(driven(DesignKind::N3) <= driven(DesignKind::N2));
            assert!(driven(DesignKind::N2) <= driven(DesignKind::N1a));
        }
    }
}

#[test]
fn phase_schedule_struct_mirrors_design_formulas() {
    for design in DesignKind::ALL {
        for n in NS {
            for r in RS {
                let d = stationarity(design);
                let s = PhaseSchedule::new(design, n, r, ROW_BITS);
                assert_eq!(s.phase1_cycles, d.phase1_cycles(n, r, ROW_BITS));
                assert_eq!(s.idle_cycles, d.idle_cycles(n, r));
                assert_eq!(s.queue_bits, d.xnor_queue_bits(n, r));
                assert!(s.total_latency_cycles >= s.phase1_cycles);
                // Round cost is affine in tuple count with slope phase1.
                let a = s.round_cycles(10);
                let b = s.round_cycles(11);
                assert_eq!(b - a, s.phase1_cycles.max(1));
            }
        }
    }
}

/// Reconciles `Schedule::sweeps_until_frozen` with the sweep loop the
/// solvers actually run. The closed form counts cooling steps until the
/// temperature first drops below the freeze threshold; the solver cools
/// once *after* each sweep and checks frozen-ness *before* cooling, so a
/// run that never flips a spin converges on sweep
/// `sweeps_until_frozen() + 1` — the first sweep observed frozen. The
/// differential is checked for both cooling families.
#[test]
fn sweeps_until_frozen_matches_the_solver_sweep_loop() {
    use sachi::ising::anneal::{Annealer, Schedule};

    let schedules = [
        Schedule::new(8.0, 0.5, 0.1),    // geometric, doc example
        Schedule::new(100.0, 0.9, 0.05), // geometric, long tail
        Schedule::new(1.0, 0.25, 0.9),   // geometric, frozen almost at once
        Schedule::linear(8.0, 2.0, 0.1), // linear, exact multiples
        Schedule::linear(7.3, 1.7, 0.2), // linear, non-integral steps
        Schedule::linear(0.5, 1.0, 0.6), // linear, frozen from sweep 0
    ];

    for schedule in schedules {
        // Differential 1: stepping a live annealer cool-by-cool agrees
        // with the closed form.
        let mut annealer = Annealer::new(schedule, 0);
        let mut cools = 0u64;
        while !annealer.is_frozen() {
            annealer.cool();
            cools += 1;
            assert!(cools < 100_000, "schedule never froze: {schedule:?}");
        }
        assert_eq!(
            cools,
            schedule.sweeps_until_frozen(),
            "annealer stepping disagrees with closed form for {schedule:?}"
        );

        // Differential 2: a deterministically flip-free solve (a stiff
        // complete-graph ferromagnet started in its ground state, so
        // every proposal is a huge uphill move whose acceptance
        // probability underflows to exactly zero) converges exactly one
        // sweep after the closed-form freeze point.
        let graph = topology::complete(8, |_, _| 1_000_000).expect("valid graph");
        let init = SpinVector::filled(8, Spin::Up);
        let opts = SolveOptions {
            schedule,
            ..SolveOptions::for_graph(&graph, 11)
        }
        .with_max_sweeps(200_000);
        let mut solver = CpuReferenceSolver::new();
        let result = solver.solve(&graph, &init, &opts);
        assert!(
            result.converged,
            "flip-free run must converge: {schedule:?}"
        );
        assert_eq!(result.flips, 0, "{schedule:?}");
        assert_eq!(
            result.sweeps,
            schedule.sweeps_until_frozen() + 1,
            "solver sweep count disagrees with closed form for {schedule:?}"
        );
    }
}
