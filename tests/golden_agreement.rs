//! Cross-crate integration: every machine in the workspace — the four
//! SACHI stationarity designs, BRIM, and Ising-CIM — must reproduce the
//! golden CPU solver's Hamiltonian trajectory exactly, on every workload
//! family. This is the paper's premise that architecture changes the
//! cost of an iteration, never its result ("they all arrive at the same H
//! at the end of each iteration").

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn golden(graph: &IsingGraph, init: &SpinVector, opts: &SolveOptions) -> SolveResult {
    CpuReferenceSolver::new().solve(graph, init, opts)
}

fn assert_matches(label: &str, golden: &SolveResult, got: &SolveResult) {
    assert_eq!(got.energy, golden.energy, "{label}: final energy");
    assert_eq!(got.sweeps, golden.sweeps, "{label}: iteration count");
    assert_eq!(got.trace, golden.trace, "{label}: H trajectory");
    assert_eq!(got.spins, golden.spins, "{label}: final spins");
    assert_eq!(got.flips, golden.flips, "{label}: flip count");
}

fn check_all_sachi_designs(graph: &IsingGraph, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, seed ^ 0x9e37).with_trace();
    let reference = golden(graph, &init, &opts);
    for design in DesignKind::ALL {
        let mut machine = SachiMachine::new(SachiConfig::new(design));
        let got = machine.solve(graph, &init, &opts);
        assert_matches(design.label(), &reference, &got);
    }
}

#[test]
fn sachi_designs_match_golden_on_molecular_dynamics() {
    let w = MolecularDynamics::new(6, 6, 3);
    check_all_sachi_designs(w.graph(), 1);
}

#[test]
fn sachi_designs_match_golden_on_asset_allocation() {
    let w = AssetAllocation::new(24, 5);
    check_all_sachi_designs(w.graph(), 2);
}

#[test]
fn sachi_designs_match_golden_on_image_segmentation() {
    let w = ImageSegmentation::with_options(8, 8, 7, Connectivity::Grid4, 6);
    check_all_sachi_designs(w.graph(), 3);
}

#[test]
fn sachi_designs_match_golden_on_dense_segmentation() {
    let w = ImageSegmentation::new(8, 8, 9);
    check_all_sachi_designs(w.graph(), 4);
}

#[test]
fn sachi_designs_match_golden_on_decision_tsp() {
    let w = TspDecision::new(20, 11);
    check_all_sachi_designs(w.graph(), 5);
}

#[test]
fn sachi_designs_match_golden_on_tour_tsp() {
    let w = TspTour::new(5, 13);
    check_all_sachi_designs(w.graph(), 6);
}

#[test]
fn brim_matches_golden_within_its_envelope() {
    // BRIM: <= 1000 nodes, signed 4-bit.
    let w = MolecularDynamics::new(8, 8, 17);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(7);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 19).with_trace();
    let reference = golden(graph, &init, &opts);
    let mut brim = BrimMachine::new();
    let (got, report) = brim
        .solve_detailed(graph, &init, &opts)
        .expect("within BRIM envelope");
    assert_matches("BRIM", &reference, &got);
    assert!((report.reuse - 1.0).abs() < f64::EPSILON);
}

#[test]
fn ising_cim_matches_golden_within_its_envelope() {
    // Ising-CIM: King's graph, unsigned 2-bit.
    let w = MolecularDynamics::with_resolution(8, 8, 23, 2);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(8);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 29).with_trace();
    let reference = golden(graph, &init, &opts);
    let mut cim = CimMachine::new();
    let (got, report) = cim
        .solve_detailed(graph, &init, &opts)
        .expect("within Ising-CIM envelope");
    assert_matches("Ising-CIM", &reference, &got);
    assert!((report.reuse - 1.0).abs() < f64::EPSILON);
}

#[test]
fn all_machines_agree_with_each_other_on_shared_envelope() {
    // The intersection of every machine's envelope: small 2-bit King's
    // graph. One problem, seven machines, one trajectory.
    let w = MolecularDynamics::with_resolution(6, 6, 31, 2);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(9);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 37).with_trace();
    let reference = golden(graph, &init, &opts);

    for design in DesignKind::ALL {
        let got = SachiMachine::new(SachiConfig::new(design)).solve(graph, &init, &opts);
        assert_matches(design.label(), &reference, &got);
    }
    let (brim, _) = BrimMachine::new()
        .solve_detailed(graph, &init, &opts)
        .expect("BRIM envelope");
    assert_matches("BRIM", &reference, &brim);
    let (cim, _) = CimMachine::new()
        .solve_detailed(graph, &init, &opts)
        .expect("CIM envelope");
    assert_matches("Ising-CIM", &reference, &cim);
}

#[test]
fn threaded_ensembles_match_sequential_golden_runs_on_every_design() {
    // Differential conformance for the parallel replica path: each SACHI
    // design, run as a 4-replica / 4-thread ensemble, must equal a
    // sequential golden-model run replica for replica — same derived
    // seed, same spins, same trajectory, same accept/reject counts.
    let w = MolecularDynamics::new(7, 7, 47);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(11);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 53).with_trace();
    let replicas = 4usize;

    // Sequential golden runs, one per derived replica seed.
    let goldens: Vec<SolveResult> = (0..replicas)
        .map(|k| {
            let o = SolveOptions {
                seed: derive_replica_seed(opts.seed, k as u64),
                ..opts.clone()
            };
            golden(graph, &init, &o)
        })
        .collect();

    for design in DesignKind::ALL {
        let config = SachiConfig::new(design);
        let best_of =
            EnsembleRunner::new(replicas)
                .with_threads(4)
                .run(graph, &init, &opts, |_| SachiMachine::new(config.clone()));
        assert_eq!(best_of.replicas.len(), replicas);
        for (k, (got, reference)) in best_of.replicas.iter().zip(&goldens).enumerate() {
            let label = format!("{} replica {k}", design.label());
            assert_matches(&label, reference, got);
            assert_eq!(
                got.uphill_accepted, reference.uphill_accepted,
                "{label}: uphill accepts"
            );
            assert_eq!(
                got.uphill_rejected, reference.uphill_rejected,
                "{label}: uphill rejects"
            );
        }
        // The reduction picks the true minimum (lowest index on ties).
        let best = best_of.best();
        assert!(goldens.iter().all(|g| g.energy >= best.energy));
        assert_eq!(best, &goldens[best_of.best_index]);
    }
}

#[test]
fn geometry_never_changes_results() {
    // Shrinking the compute/storage arrays forces rounds and DRAM
    // streaming but must not perturb the functional outcome.
    let w = MolecularDynamics::new(7, 7, 41);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(10);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 43).with_trace();
    let reference = golden(graph, &init, &opts);
    for hierarchy in [
        CacheHierarchy::hpca_default(),
        CacheHierarchy::desktop(),
        CacheHierarchy::server(),
    ] {
        let got = SachiMachine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(hierarchy))
            .solve(graph, &init, &opts);
        assert_matches("hierarchy preset", &reference, &got);
    }
    let tiny = CacheHierarchy {
        compute: CacheGeometry::new(1, 4, 64, 1),
        storage: CacheGeometry::new(1, 2, 64, 2),
    };
    let got = SachiMachine::new(SachiConfig::new(DesignKind::N3).with_hierarchy(tiny))
        .solve(graph, &init, &opts);
    assert_matches("tiny hierarchy", &reference, &got);
}
