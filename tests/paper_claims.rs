//! Shape-level reproduction of the paper's quantitative claims: the
//! orderings and mechanisms of Figs. 15–19 must hold in this
//! implementation (absolute factors are recorded in EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

/// Fig. 15a: reuse at 1K spins / 4-bit ICs is ~4 (asset), ~200 (image
/// segmentation), ~4000 (TSP), ~32 (molecular dynamics) for SACHI(n3),
/// against 1 for BRIM and Ising-CIM.
#[test]
fn fig15a_reuse_table() {
    let reuse = |kind: CopKind| {
        let shape = kind.standard_shape(1_000).with_resolution(4);
        PerfModel::new(SachiConfig::new(DesignKind::N3))
            .iteration(&shape)
            .reuse
    };
    assert_eq!(reuse(CopKind::AssetAllocation), 4);
    assert_eq!(reuse(CopKind::MolecularDynamics), 32);
    assert_eq!(reuse(CopKind::ImageSegmentation), 192); // paper: ~200
    assert_eq!(reuse(CopKind::TravelingSalesman), 3_996); // paper: ~4000
}

/// Fig. 15b/c: SACHI(n3) beats BRIM on both cycles and energy for every
/// COP at 1K spins / 4-bit, and the TSP speedup exceeds the asset
/// allocation speedup (parallelism across neighbors).
#[test]
fn fig15bc_sachi_beats_brim() {
    let w = MolecularDynamics::new(10, 10, 3);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(1);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 2);

    let mut sachi = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (_, s) = sachi.solve_detailed(graph, &init, &opts);
    let (_, b) = BrimMachine::new()
        .solve_detailed(graph, &init, &opts)
        .expect("BRIM envelope");

    let speedup = b.total_cycles.ratio(s.total_cycles);
    let energy_gain = b.energy.total().ratio(s.energy.total());
    assert!(speedup > 10.0, "speedup only {speedup:.1}x");
    assert!(energy_gain > 5.0, "energy gain only {energy_gain:.1}x");

    // Analytic model at 1K spins: TSP speedup > asset speedup.
    let brim = BrimMachine::new();
    let model = PerfModel::new(SachiConfig::new(DesignKind::N3));
    let cpi = |kind: CopKind| {
        let shape = kind.standard_shape(1_000).with_resolution(4);
        let sachi_cpi = model.iteration(&shape).effective_cycles.get() as f64;
        let brim_cpi = brim.cycles_per_sweep(shape.spins, shape.neighbors_per_spin) as f64;
        brim_cpi / sachi_cpi
    };
    let asset = cpi(CopKind::AssetAllocation);
    let tsp = cpi(CopKind::TravelingSalesman);
    assert!(asset > 1.0, "asset speedup {asset:.1}");
    assert!(
        tsp > asset,
        "TSP speedup {tsp:.1} should exceed asset {asset:.1}"
    );
}

/// Fig. 15d/e: SACHI(n3) beats Ising-CIM on cycles (paper: ~70-80x) and
/// energy for 2-bit molecular dynamics, with ~16x more reuse.
#[test]
fn fig15de_sachi_beats_ising_cim() {
    let w = MolecularDynamics::with_resolution(16, 16, 5, 2);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 3);

    let mut sachi = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let (_, s) = sachi.solve_detailed(graph, &init, &opts);
    let (_, c) = CimMachine::new()
        .solve_detailed(graph, &init, &opts)
        .expect("CIM envelope");

    let speedup = c.total_cycles.ratio(s.total_cycles);
    assert!(
        speedup > 20.0 && speedup < 500.0,
        "speedup {speedup:.1}x out of plausible band"
    );
    assert!(c.energy.total() > s.energy.total());
    // Reuse: N*R = 16 for the paper; interior tuples dominate here.
    assert!(
        s.reuse / c.reuse > 8.0,
        "reuse advantage {:.1}",
        s.reuse / c.reuse
    );
}

/// Fig. 17: CPI ladder n3 <= n2 <= n1b <= n1a at every size, and CPI
/// grows monotonically with spin count.
#[test]
fn fig17_cpi_ladder_and_monotonicity() {
    for kind in CopKind::ALL {
        let mut last_n3 = 0u64;
        for spins in [500u64, 10_000, 200_000, 1_000_000] {
            let shape = kind.standard_shape(spins);
            let est = |k| PerfModel::new(SachiConfig::new(k)).iteration(&shape);
            let (ea, eb, ec, ed) = (
                est(DesignKind::N1a),
                est(DesignKind::N1b),
                est(DesignKind::N2),
                est(DesignKind::N3),
            );
            let (a, b, c, d) = (
                ea.effective_cycles.get(),
                eb.effective_cycles.get(),
                ec.effective_cycles.get(),
                ed.effective_cycles.get(),
            );
            // A 0.1% slack absorbs per-round pipeline-fill wobble (n2 and
            // n3 tie exactly for single-neighbor COPs modulo round count).
            let le = |x: u64, y: u64| (x as f64) <= (y as f64) * 1.001;
            // n3 is always the best design; n1b never loses to n1a.
            assert!(
                le(d, a) && le(d, b) && le(d, c),
                "{kind} at {spins}: n3 {d} not best of {a} {b} {c}"
            );
            assert!(le(b, a), "{kind} at {spins}: n1b {b} > n1a {a}");
            // n2 <= n1b holds whenever n2's larger resident footprint has
            // not yet cost it tile parallelism (it stores R x more per
            // tuple; once it overflows, capacity can beat throughput —
            // a crossover the paper's Fig. 17 curves gloss over, noted in
            // EXPERIMENTS.md).
            if ec.fits_in_compute {
                assert!(le(c, b), "{kind} at {spins}: resident n2 {c} > n1b {b}");
            }
            assert!(d >= last_n3, "{kind}: CPI shrank with size");
            last_n3 = d;
        }
    }
}

/// Fig. 17(iv): TSP has the highest CPI of all COPs for the
/// neighbor-dependent designs.
#[test]
fn fig17_tsp_has_highest_cpi() {
    for design in [DesignKind::N1a, DesignKind::N1b, DesignKind::N2] {
        let cpi = |kind: CopKind| {
            PerfModel::new(SachiConfig::new(design))
                .iteration(&kind.standard_shape(100_000))
                .effective_cycles
                .get()
        };
        let tsp = cpi(CopKind::TravelingSalesman);
        for other in [
            CopKind::AssetAllocation,
            CopKind::ImageSegmentation,
            CopKind::MolecularDynamics,
        ] {
            assert!(tsp > cpi(other), "{design}: TSP not the worst vs {other}");
        }
    }
}

/// Fig. 18: n1a/n1b CPI falls with lower IC resolution; n2/n3 stay flat
/// (within round-fill noise).
#[test]
fn fig18_resolution_sensitivity() {
    for kind in CopKind::ALL {
        let shape = |r| kind.standard_shape(1_000_000).with_resolution(r);
        for design in [DesignKind::N1a, DesignKind::N1b] {
            let m = PerfModel::new(SachiConfig::new(design));
            let lo = m.iteration(&shape(2)).compute_cycles.get();
            let hi = m.iteration(&shape(8)).compute_cycles.get();
            assert!(lo < hi, "{design} on {kind}: {lo} !< {hi}");
        }
        for design in [DesignKind::N2, DesignKind::N3] {
            let m = PerfModel::new(SachiConfig::new(design));
            let lo = m.iteration(&shape(2)).compute_cycles.get() as f64;
            let hi = m.iteration(&shape(8)).compute_cycles.get() as f64;
            if design == DesignKind::N3 && kind == CopKind::TravelingSalesman {
                // Deviation from the paper's "no change" claim, recorded
                // in EXPERIMENTS.md: a complete-graph tuple spans multiple
                // rows, and higher R means more row splits — CPI *does*
                // grow, just far slower than n1's linear R dependence.
                assert!(hi > lo, "row-split effect vanished");
                let n1_growth = {
                    let m1 = PerfModel::new(SachiConfig::new(DesignKind::N1a));
                    m1.iteration(&shape(8)).compute_cycles.get() as f64
                        / m1.iteration(&shape(2)).compute_cycles.get() as f64
                };
                assert!(hi / lo < n1_growth, "n3 should be less R-sensitive than n1");
                continue;
            }
            assert!(
                (hi - lo).abs() / lo < 0.25,
                "{design} on {kind} not ~flat: {lo} vs {hi}"
            );
        }
    }
}

/// Fig. 19b: wall-clock solution time improves monotonically from n1a to
/// n3 on a real solve.
#[test]
fn fig19b_solution_time_ladder() {
    let w = ImageSegmentation::with_options(8, 8, 11, Connectivity::Grid4, 6);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 5);
    let mut times = Vec::new();
    for design in DesignKind::ALL {
        let (_, report) =
            SachiMachine::new(SachiConfig::new(design)).solve_detailed(graph, &init, &opts);
        times.push(report.wall_time.get());
    }
    assert!(
        times[3] < times[2],
        "n3 {:?} !< n2 {:?}",
        times[3],
        times[2]
    );
    assert!(times[2] < times[1], "n2 !< n1b");
    assert!(times[1] <= times[0], "n1b !<= n1a");
}

/// Fig. 19c: lowering IC resolution increases the iterations needed to
/// *reach a given solution quality* — coarse coefficients converge fast
/// to worse answers, so under an iso-accuracy criterion they need more
/// sweeps (often never arriving; we cap and count the cap).
#[test]
fn fig19c_low_resolution_needs_more_iterations_to_iso_accuracy() {
    const TARGET: f64 = 0.995;
    const CAP: u64 = 512;
    // Deterministic solver: a run capped at k sweeps is the prefix of the
    // same run capped at 2k, so stepping the cap probes "sweeps until the
    // target accuracy is first reached".
    let sweeps_to_target = |bits: u32, seed: u64| -> u64 {
        let w = AssetAllocation::with_resolution(30, seed, bits);
        let graph = w.graph();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let mut solver = CpuReferenceSolver::new();
        let mut cap = 1u64;
        while cap <= CAP {
            let opts = SolveOptions::for_graph(graph, seed + 100).with_max_sweeps(cap);
            let r = solver.solve(graph, &init, &opts);
            if w.accuracy(&r.spins) >= TARGET {
                return r.sweeps;
            }
            if r.converged {
                break; // converged below target: will never arrive
            }
            cap *= 2;
        }
        CAP
    };
    let mut low = 0u64;
    let mut high = 0u64;
    for seed in 0..6 {
        low += sweeps_to_target(2, seed);
        high += sweeps_to_target(16, seed);
    }
    assert!(
        low > high,
        "2-bit reached iso-accuracy in {low} sweeps vs 16-bit {high}"
    );
}

/// Sec. VII.2: bigger cache presets monotonically improve 1M-spin TSP.
#[test]
fn sec7_cache_scaling() {
    let shape = CopKind::TravelingSalesman.standard_shape(1_000_000);
    let cpi = |h| {
        PerfModel::new(SachiConfig::new(DesignKind::N3).with_hierarchy(h))
            .iteration(&shape)
            .effective_cycles
            .get() as f64
    };
    let base = cpi(CacheHierarchy::hpca_default());
    let desktop = cpi(CacheHierarchy::desktop());
    let server = cpi(CacheHierarchy::server());
    assert!(
        base / desktop > 2.0,
        "desktop speedup {:.1}",
        base / desktop
    );
    assert!(
        desktop / server > 1.5,
        "server over desktop {:.1}",
        desktop / server
    );
}

/// The 2x CPI claim: Ising-CIM's read-modify-write makes each compute a
/// 2-step (3+3 cycle) operation, visible directly in its per-sweep cycles.
#[test]
fn cim_pays_double_cycle_compute_update() {
    let cim = CimMachine::new();
    let update_share = cim.config().update_cycles as f64
        / (cim.config().compute_cycles + cim.config().update_cycles) as f64;
    assert!((update_share - 0.5).abs() < 1e-12);
}

/// Ablations: tuple-rep removal surfaces cross-tuple re-reads; prefetch
/// removal lengthens the critical path; both leave results untouched.
#[test]
fn ablations_change_cost_not_results() {
    let w = MolecularDynamics::new(7, 7, 13);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(6);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 7);

    let (base_result, base) =
        SachiMachine::new(SachiConfig::new(DesignKind::N3)).solve_detailed(graph, &init, &opts);
    let (norep_result, norep) =
        SachiMachine::new(SachiConfig::new(DesignKind::N3).without_tuple_rep())
            .solve_detailed(graph, &init, &opts);
    assert_eq!(base_result.energy, norep_result.energy);
    assert_eq!(base.cross_tuple_rereads, 0);
    assert!(norep.cross_tuple_rereads > 0);

    let tiny = CacheHierarchy {
        compute: CacheGeometry::new(1, 4, 64, 1),
        storage: CacheGeometry::new(1, 2, 64, 2),
    };
    let (pf_result, pf) = SachiMachine::new(SachiConfig::new(DesignKind::N2).with_hierarchy(tiny))
        .solve_detailed(graph, &init, &opts);
    let (nopf_result, nopf) = SachiMachine::new(
        SachiConfig::new(DesignKind::N2)
            .with_hierarchy(tiny)
            .without_prefetch(),
    )
    .solve_detailed(graph, &init, &opts);
    assert_eq!(pf_result.energy, nopf_result.energy);
    assert!(nopf.total_cycles > pf.total_cycles);
}
