//! Integration tests for the extension systems built beyond the paper's
//! evaluation section: the runtime API + L1 mode register (Sec. VII.1/3),
//! the NP-formulation library (Sec. VII.3), the multi-core scaling model
//! (Sec. IV.B.2), graph file I/O, and the CMOS-annealer related-work
//! baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;
use sachi::workloads::lucas;

#[test]
fn runtime_launch_respects_mode_exclusivity_and_matches_golden() {
    let w = MolecularDynamics::new(8, 8, 1);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(2);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 3);

    let mut ctx = SachiContext::new(SachiConfig::new(DesignKind::N3));
    // Conventional traffic before the launch.
    for i in 0..64u64 {
        ctx.l1_mut().read(i * 64).unwrap();
    }
    let warm_lines = 64;
    let handle = ctx.upload(graph, &init);
    let launch = ctx.launch(&handle, &opts);
    assert_eq!(launch.lines_flushed_entering, warm_lines);

    let golden = CpuReferenceSolver::new().solve(graph, &init, &opts);
    assert_eq!(launch.result.energy, golden.energy);
    assert_eq!(launch.result.sweeps, golden.sweeps);
    // Normal mode restored, cache cold.
    assert_eq!(ctx.l1().mode(), CacheMode::Normal);
    assert!(matches!(ctx.l1_mut().read(0).unwrap(), Access::Miss { .. }));
}

#[test]
fn lucas_formulations_solve_on_the_sachi_machine() {
    // The whole point of the formulation library: any NP problem it
    // builds runs unchanged on the hardware machine, not just the CPU
    // solver.
    let input = lucas::InputGraph::cycle(8);
    let problem = lucas::max_cut(&input).expect("formulation builds");
    let graph = problem.graph();
    let mut rng = StdRng::seed_from_u64(4);
    let init = SpinVector::random(graph.num_spins(), &mut rng);

    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let mut best_cut = 0;
    for seed in 0..5 {
        let (result, report) =
            machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, seed));
        best_cut = best_cut.max(lucas::cut_size(&input, &result.spins));
        assert!(report.reuse >= 1.0);
    }
    assert_eq!(best_cut, 8, "even cycle: every edge cut");
}

#[test]
fn dimacs_file_round_trips_through_a_solve() {
    let w = MolecularDynamics::new(6, 6, 9);
    let text = to_dimacs(w.graph());
    let parsed = parse_dimacs(&text).expect("round-trip parses");
    assert_eq!(&parsed, w.graph());

    let mut rng = StdRng::seed_from_u64(5);
    let init = SpinVector::random(parsed.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&parsed, 6);
    let from_file = CpuReferenceSolver::new().solve(&parsed, &init, &opts);
    let from_builder = CpuReferenceSolver::new().solve(w.graph(), &init, &opts);
    assert_eq!(from_file.energy, from_builder.energy);
    assert_eq!(from_file.trace, from_builder.trace);
}

#[test]
fn multicore_locality_story_holds_on_real_workloads() {
    let w = MolecularDynamics::new(48, 48, 11);
    let model = MulticoreModel::new(SachiConfig::new(DesignKind::N3));
    let contiguous = model.estimate(w.graph(), &Partition::contiguous(48 * 48, 4));
    let interleaved = model.estimate(w.graph(), &Partition::interleaved(48 * 48, 4));
    assert!(contiguous.cut_edges * 4 < interleaved.cut_edges);
    assert!(contiguous.speedup_vs_single >= interleaved.speedup_vs_single);
    assert!(contiguous.speedup_vs_single > 2.0);
}

#[test]
fn cmos_annealer_quality_comparable_but_envelope_narrow() {
    let side = 10;
    let w = MolecularDynamics::with_resolution(side, side, 13, 2);
    // 2-bit MD has bonds of exactly 1 -> within the ternary envelope.
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(7);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 8);

    let mut chip = CmosAnnealer::new(side);
    let (result, report) = chip
        .solve_detailed(graph, &init, &opts)
        .expect("in envelope");
    assert!(
        w.accuracy(&result.spins) > 0.85,
        "chip accuracy {}",
        w.accuracy(&result.spins)
    );
    assert!(report.total_cycles.get() > 0);

    // A 4-bit instance is out of envelope — SACHI's reconfigurability is
    // the differentiator.
    let heavy = MolecularDynamics::new(side, side, 13);
    assert!(chip.check_limits(heavy.graph()).is_err());
    let mut sachi = SachiMachine::new(SachiConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let hinit = SpinVector::random(heavy.graph().num_spins(), &mut rng);
    let (hres, _) = sachi.solve_detailed(
        heavy.graph(),
        &hinit,
        &SolveOptions::for_graph(heavy.graph(), 10),
    );
    assert!(heavy.accuracy(&hres.spins) > 0.9);
}

#[test]
fn qubo_problems_preserve_optima_through_the_machine() {
    // Brute-force a small QUBO, then confirm the machine's annealed
    // answer reaches the same optimum objective.
    let mut q = QuboBuilder::new(6);
    q.linear(0, -2)
        .linear(3, 1)
        .quadratic(0, 1, 3)
        .quadratic(2, 3, -4)
        .quadratic(4, 5, 2)
        .quadratic(1, 4, -1);
    let problem = q.build().expect("builds");
    let brute_best = (0..(1u32 << 6))
        .map(|mask| {
            let spins: SpinVector = (0..6)
                .map(|b| Spin::from_bit((mask >> b) & 1 == 1))
                .collect();
            problem.objective(&spins)
        })
        .min()
        .expect("non-empty");

    let graph = problem.graph();
    let mut rng = StdRng::seed_from_u64(11);
    let init = SpinVector::random(6, &mut rng);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N2));
    let mut best = i64::MAX;
    for seed in 0..8 {
        let (result, _) =
            machine.solve_detailed(graph, &init, &SolveOptions::for_graph(graph, seed));
        best = best.min(problem.objective(&result.spins));
    }
    assert_eq!(best, brute_best);
}

#[test]
fn multi_start_helper_works_with_hardware_machines() {
    let w = ImageSegmentation::with_options(8, 8, 15, Connectivity::Grid4, 6);
    let graph = w.graph();
    let mut rng = StdRng::seed_from_u64(12);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(graph, 13);
    let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
    let single = machine.solve(graph, &init, &opts);
    let multi = solve_multi_start(&mut machine, graph, &init, &opts, 6);
    assert!(multi.energy <= single.energy);
}
