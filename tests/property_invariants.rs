//! Cross-crate property tests: for arbitrary random problems, the
//! hardware path must equal the mathematical definition, and machine
//! accounting must satisfy its structural invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

fn arbitrary_king_graph(rows: usize, cols: usize, salt: u64, max_abs: i32) -> IsingGraph {
    let mut k = salt;
    topology::king(rows, cols, |i, j| {
        k = k
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let span = (2 * max_abs + 1) as u64;
        ((k >> 33) % span) as i32 - max_abs + (i as i32 - j as i32) % 2
    })
    .expect("king graph construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any SACHI design on any random King's-graph problem reproduces the
    /// golden trajectory exactly.
    #[test]
    fn machines_always_match_golden(salt in 0u64..1000, seed in 0u64..1000, design_idx in 0usize..4) {
        let graph = arbitrary_king_graph(4, 5, salt, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, seed).with_max_sweeps(200).with_trace();
        let golden = CpuReferenceSolver::new().solve(&graph, &init, &opts);
        let design = DesignKind::ALL[design_idx];
        let got = SachiMachine::new(SachiConfig::new(design)).solve(&graph, &init, &opts);
        prop_assert_eq!(got.trace, golden.trace);
        prop_assert_eq!(got.energy, golden.energy);
    }

    /// Machine accounting invariants: reuse within its design bound, no
    /// negative/NaN energy, cycles consistent.
    #[test]
    fn report_invariants(salt in 0u64..500, design_idx in 0usize..4) {
        let graph = arbitrary_king_graph(4, 4, salt, 5);
        let mut rng = StdRng::seed_from_u64(salt);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, salt).with_max_sweeps(100);
        let design = DesignKind::ALL[design_idx];
        let (_, report) = SachiMachine::new(SachiConfig::new(design)).solve_detailed(&graph, &init, &opts);

        let n = graph.max_degree() as u64;
        let r = report.resolution_bits;
        let bound = stationarity(design).max_reuse(n, r) as f64;
        prop_assert!(report.reuse > 0.0 && report.reuse <= bound + 1e-9,
            "reuse {} outside (0, {}]", report.reuse, bound);
        prop_assert!(report.energy.total().get().is_finite());
        prop_assert!(report.total_cycles >= report.compute_cycles);
        prop_assert!(report.sweeps > 0);
        prop_assert_eq!(report.design, design);
        prop_assert!(report.cycles_per_iteration() > 0.0);
    }

    /// The annealing solve never ends above the greedy-descent energy of
    /// its own final state (i.e. the final state is locally stable).
    #[test]
    fn final_state_is_locally_stable(salt in 0u64..500) {
        let graph = arbitrary_king_graph(4, 4, salt, 4);
        let mut rng = StdRng::seed_from_u64(salt ^ 77);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, salt);
        let result = CpuReferenceSolver::new().solve(&graph, &init, &opts);
        if result.converged {
            for i in 0..graph.num_spins() {
                let delta = flip_delta(&graph, &result.spins, i);
                prop_assert!(delta >= 0, "spin {i} could still improve by {delta}");
            }
        }
    }

    /// Quantization at graph-required resolution round-trips through the
    /// tile-level XNOR datapath for all four designs.
    #[test]
    fn tile_products_equal_integer_products(j in -500i64..500, sigma in any::<bool>(), bits in 4u32..16) {
        let enc = MixedEncoding::new(bits.max(10)).unwrap();
        let spin = Spin::from_bit(sigma);
        prop_assert_eq!(enc.xnor_product(j, spin), j * spin.value());
        for other in [Spin::Up, Spin::Down] {
            prop_assert_eq!(enc.reuse_aware_product(j, other, spin), j * spin.value());
        }
    }

    /// Karmarkar-Karp's reconstruction always realizes the differencing
    /// imbalance exactly.
    #[test]
    fn karmarkar_karp_consistency(values in prop::collection::vec(1i64..100_000, 1..64)) {
        let (assignment, imbalance) = karmarkar_karp(&values);
        let signed: i64 = values.iter().zip(assignment.iter()).map(|(&v, s)| v * s.value()).sum();
        prop_assert_eq!(signed.abs(), imbalance);
        prop_assert!(imbalance >= 0);
    }
}
