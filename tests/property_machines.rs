//! Cross-family machine properties: golden-trajectory agreement and
//! accounting invariants must hold for every graph *family* the paper
//! touches (King's, grid, complete, star, sparse random), every design,
//! and random coefficients — not just the lattices the unit tests pick.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::prelude::*;

/// Deterministic pseudo-random weight from a salt (proptest shrinks the
/// salt, keeping failures reproducible).
fn weight(salt: u64, i: u32, j: u32, max_abs: i32) -> i32 {
    let mut x = salt ^ ((i as u64) << 32) ^ j as u64;
    x = x
        .wrapping_mul(0x9e3779b97f4a7c15)
        .rotate_left(31)
        .wrapping_mul(0xbf58476d1ce4e5b9);
    let span = (2 * max_abs + 1) as u64;
    ((x >> 33) % span) as i32 - max_abs
}

fn family_graph(family: usize, salt: u64) -> IsingGraph {
    match family % 5 {
        0 => topology::king(4, 5, |i, j| weight(salt, i, j, 6)).expect("king"),
        1 => topology::grid4(4, 5, |i, j| weight(salt, i, j, 10)).expect("grid"),
        2 => topology::complete(9, |i, j| weight(salt, i, j, 4)).expect("complete"),
        3 => topology::star(12, |j| weight(salt, 0, j, 12).max(1)).expect("star"),
        _ => {
            // Sparse random: ring plus salted chords.
            let n = 14u32;
            let mut b = GraphBuilder::new(n as usize);
            for i in 0..n {
                b.push_edge(i, (i + 1) % n, weight(salt, i, i + 1, 7));
            }
            for k in 0..6u32 {
                let u = (weight(salt, k, 99, 1000).unsigned_abs()) % n;
                let v = (weight(salt, k, 177, 1000).unsigned_abs()) % n;
                if u != v && ((u + 1) % n != v) && ((v + 1) % n != u) {
                    // Chords may collide; build() below falls back to the
                    // plain ring when they do.
                    b.push_edge(u, v, weight(salt, u, v, 7));
                }
            }
            match b.build() {
                Ok(g) => g,
                // Duplicate chord: degrade to the plain ring.
                Err(_) => {
                    let mut b = GraphBuilder::new(n as usize);
                    for i in 0..n {
                        b.push_edge(i, (i + 1) % n, weight(salt, i, i + 1, 7));
                    }
                    b.build().expect("ring")
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every design matches the golden trajectory on every family.
    #[test]
    fn all_designs_match_golden_on_all_families(
        family in 0usize..5,
        salt in 0u64..10_000,
        seed in 0u64..1_000,
        design_idx in 0usize..4,
    ) {
        let graph = family_graph(family, salt);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, seed).with_max_sweeps(150).with_trace();
        let golden = CpuReferenceSolver::new().solve(&graph, &init, &opts);
        let design = DesignKind::ALL[design_idx];
        let got = SachiMachine::new(SachiConfig::new(design)).solve(&graph, &init, &opts);
        prop_assert_eq!(&got.trace, &golden.trace, "{} diverged on family {}", design, family);
        prop_assert_eq!(got.energy, golden.energy);
        prop_assert_eq!(got.flips, golden.flips);
    }

    /// The resident machine agrees with the scratch machine everywhere
    /// (and hence with the golden model).
    #[test]
    fn resident_machine_matches_scratch_on_all_families(
        family in 0usize..5,
        salt in 0u64..10_000,
        seed in 0u64..1_000,
    ) {
        let graph = family_graph(family, salt);
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, seed).with_max_sweeps(120).with_trace();
        let (scratch, s_report) =
            SachiMachine::new(SachiConfig::new(DesignKind::N3)).solve_detailed(&graph, &init, &opts);
        let (resident, r_report) =
            ResidentN3Machine::new(SachiConfig::new(DesignKind::N3)).solve_detailed(&graph, &init, &opts);
        prop_assert_eq!(scratch.trace, resident.trace);
        prop_assert_eq!(s_report.compute_cycles, r_report.compute_cycles);
        prop_assert_eq!(s_report.xnor_ops, r_report.xnor_ops);
    }

    /// Accounting invariants hold across families and designs: the ledger
    /// total equals the sum of its components, XNOR work is bounded by
    /// discharge-capable bits, and BRIM/CIM keep reuse exactly 1 inside
    /// their envelopes.
    #[test]
    fn ledgers_and_reuse_invariants(family in 0usize..5, salt in 0u64..10_000) {
        let graph = family_graph(family, salt);
        let mut rng = StdRng::seed_from_u64(salt);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, salt).with_max_sweeps(60);
        for design in DesignKind::ALL {
            let (_, report) =
                SachiMachine::new(SachiConfig::new(design)).solve_detailed(&graph, &init, &opts);
            let component_sum: f64 = report.energy.iter().map(|(_, e)| e.get()).sum();
            prop_assert!((report.energy.total().get() - component_sum).abs() < 1e-6);
            prop_assert!(report.xnor_ops >= report.rwl_bits_fetched,
                "{}: XNOR ops below RWL fetches", design);
        }
        if let Ok((_, brim)) = BrimMachine::new().solve_detailed(&graph, &init, &opts) {
            prop_assert!((brim.reuse - 1.0).abs() < f64::EPSILON);
        }
        if let Ok((_, cim)) = CimMachine::new().solve_detailed(&graph, &init, &opts) {
            prop_assert!((cim.reuse - 1.0).abs() < f64::EPSILON);
        }
    }
}
