//! Differential proptests for the bit-plane fast path.
//!
//! The two-path kernel contract (DESIGN.md): for every design,
//! `compute_tuple_fast` must be **bit-identical** to `compute_tuple` in
//! its H value, its `ComputeContext` counters (cycles, RWL fetches, XNOR
//! ops, adder ops, decisions, queue peaks), and the tile's `TileStats`
//! (activations, discharges, redundancy, reads, writes) — across all four
//! designs, random tuples, and every resolution R ∈ {2..32}, including
//! empty and degree-1 tuples. The one sanctioned divergence is the
//! spin-row residency elision, pinned by its own test below.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sachi::arch::config::{DesignKind, SachiConfig};
use sachi::arch::designs::{stationarity, ComputeContext, ComputeScratch};
use sachi::arch::encoding::MixedEncoding;
use sachi::arch::machine::SachiMachine;
use sachi::arch::tuple::{SpinTuple, TuplePlanes};
use sachi::ising::graph::topology;
use sachi::ising::solver::SolveOptions;
use sachi::ising::spin::{Spin, SpinVector};
use sachi::mem::cache::{CacheGeometry, CacheHierarchy};
use sachi::mem::sram::SramTile;

/// Maps a raw draw into the R-bit two's-complement coefficient range.
fn coeff_in_range(raw: u64, r: u32) -> i32 {
    let span = 1u64 << r;
    let min = -(1i64 << (r - 1));
    let offset = i64::try_from(raw % span).expect("span <= 2^32 fits i64");
    i32::try_from(offset + min).expect("R <= 32 keeps coefficients in i32")
}

/// Builds a standalone tuple for spin 0 from raw generator output.
fn build_tuple(r: u32, pairs: &[(u64, bool)], field_raw: u64) -> SpinTuple {
    SpinTuple {
        target: 0,
        neighbors: (1..=pairs.len()).map(|j| j as u32).collect(),
        couplings: pairs
            .iter()
            .map(|&(raw, _)| coeff_in_range(raw, r))
            .collect(),
        neighbor_spins: pairs
            .iter()
            .map(|&(_, up)| if up { Spin::Up } else { Spin::Down })
            .collect(),
        field: coeff_in_range(field_raw, r),
    }
}

/// Runs all three paths (scalar, fast AoS, fast SoA) on freshly-sized
/// twin tiles and asserts bit-exact equality of (H, `ComputeContext`,
/// `TileStats`).
fn assert_paths_agree(kind: DesignKind, enc: &MixedEncoding, tuple: &SpinTuple, target: Spin) {
    let design = stationarity(kind);
    let (rows, cols) = design.tile_requirements(tuple.degree(), enc.bits(), 800);
    let mut tile_scalar = SramTile::new(rows, cols);
    let mut tile_fast = SramTile::new(rows, cols);
    let mut tile_soa = SramTile::new(rows, cols);
    let mut ctx_scalar = ComputeContext::new();
    let mut ctx_fast = ComputeContext::new();
    let mut ctx_soa = ComputeContext::new();
    let mut scratch = ComputeScratch::new();
    let mut scratch_soa = ComputeScratch::new();
    let planes = TuplePlanes::from_tuples([tuple], enc).expect("coefficients fit R bits");
    let h_scalar = design.compute_tuple(&mut tile_scalar, enc, tuple, target, &mut ctx_scalar);
    let h_fast = design.compute_tuple_fast(
        &mut tile_fast,
        enc,
        tuple,
        target,
        &mut ctx_fast,
        &mut scratch,
    );
    let h_soa = design.compute_tuple_soa(
        &mut tile_soa,
        enc,
        tuple,
        planes.view(0),
        target,
        &mut ctx_soa,
        &mut scratch_soa,
    );
    assert_eq!(
        h_scalar,
        h_fast,
        "{kind} H diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        h_scalar,
        h_soa,
        "{kind} SoA H diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        h_scalar,
        tuple.local_field(),
        "{kind} H diverged from the tuple-local golden field"
    );
    assert_eq!(
        ctx_scalar,
        ctx_fast,
        "{kind} ComputeContext diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        ctx_scalar,
        ctx_soa,
        "{kind} SoA ComputeContext diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        tile_scalar.stats(),
        tile_fast.stats(),
        "{kind} TileStats diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        tile_scalar.stats(),
        tile_soa.stats(),
        "{kind} SoA TileStats diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random tuples, every design, R ∈ {2..32}: the fast path is
    /// bit-identical to the scalar path in H, counters, and tile stats.
    #[test]
    fn fast_path_matches_scalar_path(
        r in 2u32..=32,
        pairs in prop::collection::vec((any::<u64>(), any::<bool>()), 0..48),
        target_up in any::<bool>(),
        field_raw in any::<u64>(),
    ) {
        let enc = MixedEncoding::new(r).expect("2 <= R <= 32 is valid");
        let tuple = build_tuple(r, &pairs, field_raw);
        let target = if target_up { Spin::Up } else { Spin::Down };
        for kind in DesignKind::ALL {
            assert_paths_agree(kind, &enc, &tuple, target);
        }
    }

    /// Streaming many tuples through ONE shared scratch (the machine's
    /// usage pattern) stays bit-identical to per-tuple scalar computes —
    /// the scratch carries no state that can leak between tuples.
    #[test]
    fn shared_scratch_stream_matches_scalar(
        r in 2u32..=8,
        seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..6),
    ) {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            // Distinct degrees per tuple so buffers must re-size mid-stream.
            let tuples: Vec<SpinTuple> = seeds
                .iter()
                .enumerate()
                .map(|(i, &(raw, up))| {
                    let pairs: Vec<(u64, bool)> = (0..=i * 7)
                        .map(|k| (raw.wrapping_mul(k as u64 + 1), up ^ (k % 3 == 0)))
                        .collect();
                    build_tuple(r, &pairs, raw)
                })
                .collect();
            let max_degree = tuples.iter().map(SpinTuple::degree).max().unwrap_or(1);
            let (rows, cols) = design.tile_requirements(max_degree, r, 800);
            let planes = TuplePlanes::from_tuples(tuples.iter(), &enc).expect("coefficients fit");
            let mut tile_scalar = SramTile::new(rows, cols);
            let mut tile_fast = SramTile::new(rows, cols);
            let mut tile_soa = SramTile::new(rows, cols);
            let mut ctx_scalar = ComputeContext::new();
            let mut ctx_fast = ComputeContext::new();
            let mut ctx_soa = ComputeContext::new();
            let mut scratch = ComputeScratch::new();
            let mut scratch_soa = ComputeScratch::new();
            for (i, tuple) in tuples.iter().enumerate() {
                let hs = design.compute_tuple(&mut tile_scalar, &enc, tuple, Spin::Up, &mut ctx_scalar);
                let hf = design.compute_tuple_fast(
                    &mut tile_fast, &enc, tuple, Spin::Up, &mut ctx_fast, &mut scratch,
                );
                let ho = design.compute_tuple_soa(
                    &mut tile_soa, &enc, tuple, planes.view(i), Spin::Up, &mut ctx_soa, &mut scratch_soa,
                );
                prop_assert_eq!(hs, hf, "{} H diverged mid-stream", kind);
                prop_assert_eq!(hs, ho, "{} SoA H diverged mid-stream", kind);
            }
            prop_assert_eq!(ctx_scalar, ctx_fast, "{} ComputeContext diverged", kind);
            prop_assert_eq!(ctx_scalar, ctx_soa, "{} SoA ComputeContext diverged", kind);
            prop_assert_eq!(tile_scalar.stats(), tile_fast.stats(), "{} TileStats diverged", kind);
            prop_assert_eq!(tile_scalar.stats(), tile_soa.stats(), "{} SoA TileStats diverged", kind);
        }
    }
}

#[test]
fn empty_and_degree_one_tuples_agree_at_every_resolution() {
    for r in [2u32, 3, 7, 8, 31, 32] {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        let empty = build_tuple(r, &[], 12345);
        let single_pos = build_tuple(r, &[(u64::MAX, true)], 7);
        let single_neg = build_tuple(r, &[(0, false)], u64::MAX);
        for kind in DesignKind::ALL {
            for tuple in [&empty, &single_pos, &single_neg] {
                for target in [Spin::Up, Spin::Down] {
                    assert_paths_agree(kind, &enc, tuple, target);
                }
            }
        }
    }
}

#[test]
fn extreme_coefficients_agree() {
    // Most-negative / most-positive coefficients stress the sign bit and
    // the complement (XOR) decode of eqn. 5.
    for r in [2u32, 4, 16, 32] {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        let span = 1u64 << r;
        // raw = 0 -> min coefficient; raw = span - 1 -> max coefficient.
        let pairs: Vec<(u64, bool)> = (0..9)
            .map(|k| (if k % 2 == 0 { 0 } else { span - 1 }, k % 3 != 0))
            .collect();
        let tuple = build_tuple(r, &pairs, span - 1);
        for kind in DesignKind::ALL {
            assert_paths_agree(kind, &enc, &tuple, Spin::Down);
        }
    }
}

#[test]
fn spin_row_elision_is_the_only_sanctioned_divergence() {
    // Recomputing the SAME tuple on the spin-stationary designs: the fast
    // path skips the redundant spin-row rewrite. Everything except
    // bits_written stays bit-identical; bits_written drops by exactly the
    // elided row width per skip — and the machine never bills layout
    // writes, so the elision is unobservable in reports.
    let enc = MixedEncoding::new(5).expect("valid resolution");
    let pairs: Vec<(u64, bool)> = (0..17).map(|k| (k * 31 + 5, k % 2 == 0)).collect();
    let tuple = build_tuple(5, &pairs, 3);
    for kind in [DesignKind::N1a, DesignKind::N1b] {
        let design = stationarity(kind);
        let (rows, cols) = design.tile_requirements(tuple.degree(), enc.bits(), 800);
        let mut tile_scalar = SramTile::new(rows, cols);
        let mut tile_fast = SramTile::new(rows, cols);
        let mut ctx_scalar = ComputeContext::new();
        let mut ctx_fast = ComputeContext::new();
        let mut scratch = ComputeScratch::new();
        for pass in 0..3u64 {
            let hs =
                design.compute_tuple(&mut tile_scalar, &enc, &tuple, Spin::Up, &mut ctx_scalar);
            let hf = design.compute_tuple_fast(
                &mut tile_fast,
                &enc,
                &tuple,
                Spin::Up,
                &mut ctx_fast,
                &mut scratch,
            );
            assert_eq!(hs, hf, "{kind} H diverged on pass {pass}");
            assert_eq!(
                ctx_scalar, ctx_fast,
                "{kind} counters diverged on pass {pass}"
            );
            assert_eq!(scratch.skipped_spin_writes, pass, "{kind} skip count");
        }
        let s = tile_scalar.stats();
        let f = tile_fast.stats();
        assert_eq!(s.rwl_activations, f.rwl_activations);
        assert_eq!(s.rbl_discharges, f.rbl_discharges);
        assert_eq!(s.redundant_discharges, f.redundant_discharges);
        assert_eq!(s.compute_accesses, f.compute_accesses);
        assert_eq!(s.bits_read, f.bits_read);
        // Two skipped rewrites of the 17-bit spin row.
        assert_eq!(s.bits_written, f.bits_written + 2 * 17);
    }
}

#[test]
fn spin_row_elision_is_word_granular_across_word_boundaries() {
    // A degree-100 tuple packs its spin row into two u64 words. The
    // residency tag works per word: recomputing an unchanged tuple skips
    // BOTH words; flipping a neighbor that lives in the second word
    // rewrites only that word while the clean first word still skips.
    // As with the single-word elision above, bits_written is the only
    // divergence — H and all ComputeContext counters stay bit-identical.
    let enc = MixedEncoding::new(4).expect("valid resolution");
    let pairs: Vec<(u64, bool)> = (0..100).map(|k| (k * 13 + 1, k % 2 == 0)).collect();
    let mut tuple = build_tuple(4, &pairs, 3);
    for kind in [DesignKind::N1a, DesignKind::N1b] {
        let design = stationarity(kind);
        let (rows, cols) = design.tile_requirements(tuple.degree(), enc.bits(), 800);
        let mut tile_scalar = SramTile::new(rows, cols);
        let mut tile_fast = SramTile::new(rows, cols);
        let mut ctx_scalar = ComputeContext::new();
        let mut ctx_fast = ComputeContext::new();
        let mut scratch = ComputeScratch::new();
        // Pass 0 is cold (full upload); pass 1 recomputes the identical
        // tuple, so both spin-row words are elided.
        for _ in 0..2 {
            let hs =
                design.compute_tuple(&mut tile_scalar, &enc, &tuple, Spin::Up, &mut ctx_scalar);
            let hf = design.compute_tuple_fast(
                &mut tile_fast,
                &enc,
                &tuple,
                Spin::Up,
                &mut ctx_fast,
                &mut scratch,
            );
            assert_eq!(hs, hf, "{kind} H diverged");
        }
        assert_eq!(
            scratch.skipped_spin_writes, 2,
            "{kind}: both words of an unchanged row must skip"
        );
        // Slot 70 lives in spin-row word 1 (bits 64..100); word 0 stays
        // clean and must keep skipping.
        tuple.neighbor_spins[70] = tuple.neighbor_spins[70].flipped();
        let hs = design.compute_tuple(&mut tile_scalar, &enc, &tuple, Spin::Up, &mut ctx_scalar);
        let hf = design.compute_tuple_fast(
            &mut tile_fast,
            &enc,
            &tuple,
            Spin::Up,
            &mut ctx_fast,
            &mut scratch,
        );
        assert_eq!(hs, hf, "{kind} H diverged after the word-1 flip");
        assert_eq!(ctx_scalar, ctx_fast, "{kind} counters diverged");
        assert_eq!(
            scratch.skipped_spin_writes, 3,
            "{kind}: the clean word 0 must still skip after a word-1 flip"
        );
        let s = tile_scalar.stats();
        let f = tile_fast.stats();
        assert_eq!(s.bits_read, f.bits_read, "{kind} reads diverged");
        // Pass 1 elided the whole 100-bit row; pass 2 elided word 0
        // (64 bits) and rewrote only the 36-bit tail word.
        assert_eq!(
            s.bits_written,
            f.bits_written + 100 + 64,
            "{kind}: elision must be exactly word-granular"
        );
    }
}

/// Hierarchy small enough that a dense 36-spin complete graph cannot be
/// compute-resident for any design — the multi-round regime where
/// banking and upload/compute overlap are observable at all.
fn tiny_hierarchy() -> CacheHierarchy {
    CacheHierarchy {
        compute: CacheGeometry::new(2, 4, 64, 1),
        storage: CacheGeometry::sachi_storage_default(),
    }
}

fn solve_workload(
    config: SachiConfig,
) -> (
    sachi::ising::solver::SolveResult,
    sachi::arch::machine::RunReport,
) {
    let graph = topology::complete(36, |i, j| ((i + 2 * j) % 9) as i32 - 4).unwrap();
    let mut rng = StdRng::seed_from_u64(23);
    let init = SpinVector::random(graph.num_spins(), &mut rng);
    let opts = SolveOptions::for_graph(&graph, 17).with_trace();
    SachiMachine::new(config).solve_detailed(&graph, &init, &opts)
}

#[test]
fn bank_count_one_is_cycle_identical_to_unbanked() {
    // `with_banks(1)` must be a no-op against the default (unbanked)
    // machine: same result, same cycle accounting, bit for bit — the
    // banked upload schedule degenerates to the serial one at B = 1.
    for design in DesignKind::ALL {
        let base = SachiConfig::new(design).with_hierarchy(tiny_hierarchy());
        let (res_u, rep_u) = solve_workload(base.clone());
        let (res_b, rep_b) = solve_workload(base.with_banks(1));
        assert_eq!(res_u.energy, res_b.energy, "{design} energy");
        assert_eq!(res_u.spins, res_b.spins, "{design} spins");
        assert_eq!(res_u.trace, res_b.trace, "{design} trajectory");
        assert_eq!(
            rep_u.compute_cycles, rep_b.compute_cycles,
            "{design} compute"
        );
        assert_eq!(rep_u.load_cycles, rep_b.load_cycles, "{design} load");
        assert_eq!(rep_u.total_cycles, rep_b.total_cycles, "{design} total");
        assert_eq!(rep_u.tile, rep_b.tile, "{design} tile stats");
    }
}

#[test]
fn banking_shrinks_load_without_touching_results_or_compute() {
    // More banks -> fewer upload cycles per round, identical physics:
    // the H trajectory, compute cycles, and tile stats are bit-identical
    // while the load-side cycle count strictly drops on a multi-round
    // sweep.
    for design in DesignKind::ALL {
        let base = SachiConfig::new(design).with_hierarchy(tiny_hierarchy());
        let (res_1, rep_1) = solve_workload(base.clone());
        let (res_8, rep_8) = solve_workload(base.with_banks(8));
        assert!(
            rep_1.rounds_per_sweep > 1,
            "{design}: need multi-round sweeps"
        );
        assert_eq!(res_1.energy, res_8.energy, "{design} energy");
        assert_eq!(res_1.trace, res_8.trace, "{design} trajectory");
        assert_eq!(
            rep_1.compute_cycles, rep_8.compute_cycles,
            "{design} compute"
        );
        assert_eq!(rep_1.tile, rep_8.tile, "{design} tile stats");
        assert!(
            rep_8.load_cycles < rep_1.load_cycles,
            "{design}: 8-bank load {} !< unbanked load {}",
            rep_8.load_cycles,
            rep_1.load_cycles
        );
        assert!(
            rep_8.total_cycles <= rep_1.total_cycles,
            "{design}: banked total exceeded unbanked"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The software-pipelined sweep (prefetch overlaps round k+1's upload
    /// with round k's compute) must be an accounting-only optimization:
    /// identical H trajectory, spins, and compute cycles as the serial
    /// sweep, with a total critical path no longer than serial.
    #[test]
    fn pipelined_sweep_matches_serial_sweep(
        seed in 0u64..512,
        side in 4usize..=6,
    ) {
        let span = side * 2 + 1;
        let graph = topology::complete(6 * side, move |i, j| {
            ((i as usize * 3 + 2 * (j as usize) + seed as usize) % span) as i32 - side as i32
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let init = SpinVector::random(graph.num_spins(), &mut rng);
        let opts = SolveOptions::for_graph(&graph, seed).with_trace();
        for design in DesignKind::ALL {
            let base = SachiConfig::new(design).with_hierarchy(tiny_hierarchy());
            let (res_p, rep_p) =
                SachiMachine::new(base.clone()).solve_detailed(&graph, &init, &opts);
            let (res_s, rep_s) =
                SachiMachine::new(base.without_prefetch()).solve_detailed(&graph, &init, &opts);
            prop_assert_eq!(&res_p.trace, &res_s.trace, "{} trajectory", design);
            prop_assert_eq!(&res_p.spins, &res_s.spins, "{} spins", design);
            prop_assert_eq!(res_p.energy, res_s.energy, "{} energy", design);
            prop_assert_eq!(rep_p.compute_cycles, rep_s.compute_cycles, "{} compute", design);
            prop_assert_eq!(rep_p.tile, rep_s.tile, "{} tile stats", design);
            prop_assert!(
                rep_p.total_cycles <= rep_s.total_cycles,
                "{} pipelined total {} exceeded serial {}",
                design, rep_p.total_cycles, rep_s.total_cycles
            );
        }
    }
}
