//! Differential proptests for the bit-plane fast path.
//!
//! The two-path kernel contract (DESIGN.md): for every design,
//! `compute_tuple_fast` must be **bit-identical** to `compute_tuple` in
//! its H value, its `ComputeContext` counters (cycles, RWL fetches, XNOR
//! ops, adder ops, decisions, queue peaks), and the tile's `TileStats`
//! (activations, discharges, redundancy, reads, writes) — across all four
//! designs, random tuples, and every resolution R ∈ {2..32}, including
//! empty and degree-1 tuples. The one sanctioned divergence is the
//! spin-row residency elision, pinned by its own test below.

use proptest::prelude::*;
use sachi::arch::config::DesignKind;
use sachi::arch::designs::{stationarity, ComputeContext, ComputeScratch};
use sachi::arch::encoding::MixedEncoding;
use sachi::arch::tuple::SpinTuple;
use sachi::ising::spin::Spin;
use sachi::mem::sram::SramTile;

/// Maps a raw draw into the R-bit two's-complement coefficient range.
fn coeff_in_range(raw: u64, r: u32) -> i32 {
    let span = 1u64 << r;
    let min = -(1i64 << (r - 1));
    let offset = i64::try_from(raw % span).expect("span <= 2^32 fits i64");
    i32::try_from(offset + min).expect("R <= 32 keeps coefficients in i32")
}

/// Builds a standalone tuple for spin 0 from raw generator output.
fn build_tuple(r: u32, pairs: &[(u64, bool)], field_raw: u64) -> SpinTuple {
    SpinTuple {
        target: 0,
        neighbors: (1..=pairs.len()).map(|j| j as u32).collect(),
        couplings: pairs
            .iter()
            .map(|&(raw, _)| coeff_in_range(raw, r))
            .collect(),
        neighbor_spins: pairs
            .iter()
            .map(|&(_, up)| if up { Spin::Up } else { Spin::Down })
            .collect(),
        field: coeff_in_range(field_raw, r),
    }
}

/// Runs both paths on freshly-sized twin tiles and asserts bit-exact
/// equality of (H, `ComputeContext`, `TileStats`).
fn assert_paths_agree(kind: DesignKind, enc: &MixedEncoding, tuple: &SpinTuple, target: Spin) {
    let design = stationarity(kind);
    let (rows, cols) = design.tile_requirements(tuple.degree(), enc.bits(), 800);
    let mut tile_scalar = SramTile::new(rows, cols);
    let mut tile_fast = SramTile::new(rows, cols);
    let mut ctx_scalar = ComputeContext::new();
    let mut ctx_fast = ComputeContext::new();
    let mut scratch = ComputeScratch::new();
    let h_scalar = design.compute_tuple(&mut tile_scalar, enc, tuple, target, &mut ctx_scalar);
    let h_fast = design.compute_tuple_fast(
        &mut tile_fast,
        enc,
        tuple,
        target,
        &mut ctx_fast,
        &mut scratch,
    );
    assert_eq!(
        h_scalar,
        h_fast,
        "{kind} H diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        h_scalar,
        tuple.local_field(),
        "{kind} H diverged from the tuple-local golden field"
    );
    assert_eq!(
        ctx_scalar,
        ctx_fast,
        "{kind} ComputeContext diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
    assert_eq!(
        tile_scalar.stats(),
        tile_fast.stats(),
        "{kind} TileStats diverged (R={}, degree={})",
        enc.bits(),
        tuple.degree()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random tuples, every design, R ∈ {2..32}: the fast path is
    /// bit-identical to the scalar path in H, counters, and tile stats.
    #[test]
    fn fast_path_matches_scalar_path(
        r in 2u32..=32,
        pairs in prop::collection::vec((any::<u64>(), any::<bool>()), 0..48),
        target_up in any::<bool>(),
        field_raw in any::<u64>(),
    ) {
        let enc = MixedEncoding::new(r).expect("2 <= R <= 32 is valid");
        let tuple = build_tuple(r, &pairs, field_raw);
        let target = if target_up { Spin::Up } else { Spin::Down };
        for kind in DesignKind::ALL {
            assert_paths_agree(kind, &enc, &tuple, target);
        }
    }

    /// Streaming many tuples through ONE shared scratch (the machine's
    /// usage pattern) stays bit-identical to per-tuple scalar computes —
    /// the scratch carries no state that can leak between tuples.
    #[test]
    fn shared_scratch_stream_matches_scalar(
        r in 2u32..=8,
        seeds in prop::collection::vec((any::<u64>(), any::<bool>()), 1..6),
    ) {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        for kind in DesignKind::ALL {
            let design = stationarity(kind);
            // Distinct degrees per tuple so buffers must re-size mid-stream.
            let tuples: Vec<SpinTuple> = seeds
                .iter()
                .enumerate()
                .map(|(i, &(raw, up))| {
                    let pairs: Vec<(u64, bool)> = (0..=i * 7)
                        .map(|k| (raw.wrapping_mul(k as u64 + 1), up ^ (k % 3 == 0)))
                        .collect();
                    build_tuple(r, &pairs, raw)
                })
                .collect();
            let max_degree = tuples.iter().map(SpinTuple::degree).max().unwrap_or(1);
            let (rows, cols) = design.tile_requirements(max_degree, r, 800);
            let mut tile_scalar = SramTile::new(rows, cols);
            let mut tile_fast = SramTile::new(rows, cols);
            let mut ctx_scalar = ComputeContext::new();
            let mut ctx_fast = ComputeContext::new();
            let mut scratch = ComputeScratch::new();
            for tuple in &tuples {
                let hs = design.compute_tuple(&mut tile_scalar, &enc, tuple, Spin::Up, &mut ctx_scalar);
                let hf = design.compute_tuple_fast(
                    &mut tile_fast, &enc, tuple, Spin::Up, &mut ctx_fast, &mut scratch,
                );
                prop_assert_eq!(hs, hf, "{} H diverged mid-stream", kind);
            }
            prop_assert_eq!(ctx_scalar, ctx_fast, "{} ComputeContext diverged", kind);
            prop_assert_eq!(tile_scalar.stats(), tile_fast.stats(), "{} TileStats diverged", kind);
        }
    }
}

#[test]
fn empty_and_degree_one_tuples_agree_at_every_resolution() {
    for r in [2u32, 3, 7, 8, 31, 32] {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        let empty = build_tuple(r, &[], 12345);
        let single_pos = build_tuple(r, &[(u64::MAX, true)], 7);
        let single_neg = build_tuple(r, &[(0, false)], u64::MAX);
        for kind in DesignKind::ALL {
            for tuple in [&empty, &single_pos, &single_neg] {
                for target in [Spin::Up, Spin::Down] {
                    assert_paths_agree(kind, &enc, tuple, target);
                }
            }
        }
    }
}

#[test]
fn extreme_coefficients_agree() {
    // Most-negative / most-positive coefficients stress the sign bit and
    // the complement (XOR) decode of eqn. 5.
    for r in [2u32, 4, 16, 32] {
        let enc = MixedEncoding::new(r).expect("valid resolution");
        let span = 1u64 << r;
        // raw = 0 -> min coefficient; raw = span - 1 -> max coefficient.
        let pairs: Vec<(u64, bool)> = (0..9)
            .map(|k| (if k % 2 == 0 { 0 } else { span - 1 }, k % 3 != 0))
            .collect();
        let tuple = build_tuple(r, &pairs, span - 1);
        for kind in DesignKind::ALL {
            assert_paths_agree(kind, &enc, &tuple, Spin::Down);
        }
    }
}

#[test]
fn spin_row_elision_is_the_only_sanctioned_divergence() {
    // Recomputing the SAME tuple on the spin-stationary designs: the fast
    // path skips the redundant spin-row rewrite. Everything except
    // bits_written stays bit-identical; bits_written drops by exactly the
    // elided row width per skip — and the machine never bills layout
    // writes, so the elision is unobservable in reports.
    let enc = MixedEncoding::new(5).expect("valid resolution");
    let pairs: Vec<(u64, bool)> = (0..17).map(|k| (k * 31 + 5, k % 2 == 0)).collect();
    let tuple = build_tuple(5, &pairs, 3);
    for kind in [DesignKind::N1a, DesignKind::N1b] {
        let design = stationarity(kind);
        let (rows, cols) = design.tile_requirements(tuple.degree(), enc.bits(), 800);
        let mut tile_scalar = SramTile::new(rows, cols);
        let mut tile_fast = SramTile::new(rows, cols);
        let mut ctx_scalar = ComputeContext::new();
        let mut ctx_fast = ComputeContext::new();
        let mut scratch = ComputeScratch::new();
        for pass in 0..3u64 {
            let hs =
                design.compute_tuple(&mut tile_scalar, &enc, &tuple, Spin::Up, &mut ctx_scalar);
            let hf = design.compute_tuple_fast(
                &mut tile_fast,
                &enc,
                &tuple,
                Spin::Up,
                &mut ctx_fast,
                &mut scratch,
            );
            assert_eq!(hs, hf, "{kind} H diverged on pass {pass}");
            assert_eq!(
                ctx_scalar, ctx_fast,
                "{kind} counters diverged on pass {pass}"
            );
            assert_eq!(scratch.skipped_spin_writes, pass, "{kind} skip count");
        }
        let s = tile_scalar.stats();
        let f = tile_fast.stats();
        assert_eq!(s.rwl_activations, f.rwl_activations);
        assert_eq!(s.rbl_discharges, f.rbl_discharges);
        assert_eq!(s.redundant_discharges, f.redundant_discharges);
        assert_eq!(s.compute_accesses, f.compute_accesses);
        assert_eq!(s.bits_read, f.bits_read);
        // Two skipped rewrites of the 17-bit spin row.
        assert_eq!(s.bits_written, f.bits_written + 2 * 17);
    }
}
