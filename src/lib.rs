//! # sachi — all-digital, near-memory Ising architecture simulator
//!
//! Umbrella crate of the SACHI reproduction (HPCA 2024: "SACHI: A
//! Stationarity-Aware, All-Digital, Near-Memory, Ising Architecture").
//! It re-exports the whole workspace under one roof:
//!
//! * [`arch`] (`sachi-core`) — the SACHI architecture: mixed encoding,
//!   tuple mapping, the four stationarity designs, the functional machine,
//!   the analytic performance model, and the `FIST`/`XNORM` ISA;
//! * [`ising`] (`sachi-ising`) — spins, graphs, Hamiltonians, annealing,
//!   and the golden-model CPU solver;
//! * [`mem`] (`sachi-mem`) — 8T SRAM compute tiles, cache geometry, DRAM
//!   with prefetch, and energy accounting;
//! * [`workloads`] (`sachi-workloads`) — the four COPs of the paper's
//!   evaluation;
//! * [`baselines`] (`sachi-baselines`) — BRIM, Ising-CIM, GA, PSO, and
//!   the dedicated solvers;
//! * [`obs`] (`sachi-obs`) — metrics registry, cycle-domain solve-phase
//!   spans, and the JSON / Prometheus exporters.
//!
//! ## Quickstart
//!
//! ```
//! use sachi::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A molecular-dynamics COP (King's-graph ferromagnet)...
//! let workload = MolecularDynamics::new(6, 6, 42);
//! let graph = workload.graph();
//! let mut rng = StdRng::seed_from_u64(7);
//! let init = SpinVector::random(graph.num_spins(), &mut rng);
//!
//! // ...solved on the reuse-aware SACHI(n3) machine.
//! let mut machine = SachiMachine::new(SachiConfig::new(DesignKind::N3));
//! let opts = SolveOptions::for_graph(graph, 1);
//! let (result, report) = machine.solve_detailed(graph, &init, &opts);
//!
//! assert!(result.converged);
//! assert!(workload.accuracy(&result.spins) > 0.9);
//! println!("{} iterations, {}, {}", report.sweeps, report.total_cycles, report.energy.total());
//! ```
//!
//! See `examples/` for runnable walkthroughs of each COP and
//! `crates/bench` for the harnesses regenerating every figure of the
//! paper (documented in EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use sachi_baselines as baselines;
pub use sachi_core as arch;
pub use sachi_ising as ising;
pub use sachi_mem as mem;
pub use sachi_obs as obs;
pub use sachi_workloads as workloads;

/// One-stop import of the most-used types from every sub-crate.
pub mod prelude {
    pub use sachi_baselines::prelude::*;
    pub use sachi_core::prelude::*;
    pub use sachi_ising::prelude::*;
    pub use sachi_mem::prelude::*;
    pub use sachi_obs::prelude::*;
    pub use sachi_workloads::prelude::*;
}
