//! Offline stand-in for the subset of the `criterion` 0.5 API the
//! workspace's benchmarks use.
//!
//! The growth container has no registry access, so the workspace patches
//! `criterion` to this crate (see the root `Cargo.toml`). Benchmarks
//! compile and *run* — each `Bencher::iter` body executes a fixed warmup
//! plus a timed batch, and a `name ... time/iter` line is printed — but
//! there is no statistical analysis, no outlier rejection, and no HTML
//! report. The numbers are indicative, the harness wiring is identical.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Timed iterations per measurement. Small because the stand-in reports a
/// single batch rather than a sampled distribution.
const TIMED_ITERS: u32 = 30;

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: TIMED_ITERS,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.to_string(), TIMED_ITERS, &mut f);
        self
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(
            &format!("{}/{}", self.name, id),
            sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the stand-in; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Per-benchmark timing handle, mirroring `criterion::Bencher`.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`: a short warmup, then `iters` timed executions.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.nanos_per_iter = Some(elapsed.as_nanos() as f64 / self.iters as f64);
    }
}

fn run_one(name: &str, iters: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        nanos_per_iter: None,
    };
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) if ns >= 1e6 => println!("{name:<50} {:>10.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("{name:<50} {:>10.3} us/iter", ns / 1e3),
        Some(ns) => println!("{name:<50} {:>10.1} ns/iter", ns),
        None => println!("{name:<50}   (no iter() call)"),
    }
}

/// Declares a group-runner function over benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_records_timing() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(5);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("param", 42), &3u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        // 3 warmup + 5 timed.
        assert_eq!(runs, 8);
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("xnor", 8).to_string(), "xnor/8");
    }
}
