//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace uses.
//!
//! The growth container has no registry access, so the workspace patches
//! `proptest` to this crate (see the root `Cargo.toml`). It keeps the
//! source-level API of the property tests intact — `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`,
//! integer-range strategies, `prop::collection::vec` and `.prop_map` —
//! while replacing the engine with a deterministic sampler:
//!
//! * every test runs `ProptestConfig::cases` iterations (default
//!   [`DEFAULT_CASES`]) with inputs drawn from a per-case seeded
//!   [`rand::rngs::StdRng`], so failures reproduce exactly across runs;
//! * there is **no shrinking** — a failing case panics with the
//!   generated inputs visible in the assertion message instead;
//! * `prop_assert*` are plain `assert*` (panic, not `Err`), which is
//!   equivalent under this runner.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::rngs::StdRng;

/// Cases run per property when no `proptest_config` is given. The real
/// crate defaults to 256; 64 keeps the tier-1 suite fast while still
/// sweeping each property broadly.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// A generator of test values, mirroring `proptest::strategy::Strategy`
    /// minus shrinking. Object-safe so `prop_oneof!` can box mixed arms.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`, mirroring `prop_map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type — the coercion behind
    /// `prop_oneof!`.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Strategy for any value of `T`, produced by [`super::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen::<T>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
}

/// `any::<T>()`, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T: rand::Standard>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub use rand as __rand;

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ($cfg).cases;
                for __case in 0..__cases as u64 {
                    // Stable per-case seed: identical across runs, distinct
                    // across cases, salted per-test by the line number so
                    // sibling tests explore different streams.
                    let __seed = (__case + 1)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(line!() as u64);
                    let mut __rng =
                        <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, panicking with the message on
/// failure (no shrinking under this runner).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm),)+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = prop::collection::vec(any::<bool>(), 3..9);
        let a = strat.generate(&mut StdRng::seed_from_u64(5));
        let b = strat.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert!((3..9).contains(&a.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i64..=4, z in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn map_and_tuples_compose(v in (0u32..10, any::<bool>()).prop_map(|(n, b)| if b { n + 10 } else { n })) {
            prop_assert!(v < 20);
        }
    }

    proptest! {
        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![0u32..1, 10u32..11, 20u32..21]) {
            prop_assert!(v == 0 || v == 10 || v == 20);
        }
    }
}
