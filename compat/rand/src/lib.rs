//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The growth container has no registry access, so the workspace patches
//! `rand` to this crate (see the root `Cargo.toml`). It provides:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256** seeded through SplitMix64 — *not* the ChaCha12 stream
//!   of the real `StdRng`, so byte-for-byte streams differ from upstream,
//!   but every consumer in this workspace only relies on determinism for
//!   a fixed seed, which holds);
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` over the integer and
//!   float ranges the workspace samples.
//!
//! Uniform integers are drawn by rejection-free modulo reduction; the
//! resulting bias is below 2⁻⁴⁰ for every span used here (≤ 2¹⁸), far
//! under what the simulator's statistical tests can observe.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level uniform bit source, mirroring `rand_core::RngCore`'s `u64`
/// half (the only part the workspace touches).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable from raw uniform bits — the `Standard` distribution of
/// the real crate, folded into one trait.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample, mirroring
/// `rand::distributions::uniform::SampleUniform`. The blanket
/// [`SampleRange`] impls below are generic over this trait — exactly like
/// real rand — so type inference can flow from the *result* type back into
/// untyped range literals (`rng.gen_range(0..1 << 18) & !0x7` as `u64`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws uniformly from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = high.wrapping_sub(low) as u64;
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = high.wrapping_sub(low) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + f64::sample(rng) * (high - low)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // Closed and half-open float ranges coincide for practical purposes.
        Self::sample_half_open(low, high, rng)
    }
}

/// Ranges a generator can sample uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`. Blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is within `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic for a fixed seed, `Clone`-able with
    /// independent continuation, and fast enough for million-spin sweeps.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_balanced() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut below_half = 0usize;
        for _ in 0..4000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        assert!(
            (1600..2400).contains(&below_half),
            "biased: {below_half}/4000 below 0.5"
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3..17u64);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(-8.0..8.0);
            assert!((-8.0..8.0).contains(&c));
            let d = rng.gen_range(0..1usize << 18);
            assert!(d < 1 << 18);
        }
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let ups = (0..4000).filter(|_| rng.gen::<bool>()).count();
        assert!((1600..2400).contains(&ups), "biased: {ups}/4000 true");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "p=0.25 drew {hits}/4000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u32);
    }
}
